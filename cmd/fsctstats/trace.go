package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
)

// runTraceCmd is the trace subcommand: critical-path analysis over an
// exported span tree — either an -otlpfile written by a CLI run or a
// live/terminal job fetched from a daemon with -addr/-job. Returns the
// process exit code.
func runTraceCmd(args []string) int {
	fs := flag.NewFlagSet("fsctstats trace", flag.ExitOnError)
	var (
		otlp    = fs.String("otlp", "", "analyze this OTLP/JSON trace `file` (a CLI run's -otlpfile)")
		addr    = fs.String("addr", "localhost:8341", "fsctd daemon `address` for -job")
		job     = fs.String("job", "", "fetch this job `id`'s span tree from the daemon at -addr")
		top     = fs.Int("top", 10, "show the N largest phases in the self-time table")
		jsonOut = fs.Bool("json", false, "machine-readable JSON output")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*otlp == "") == (*job == "") {
		fmt.Fprintln(os.Stderr, "fsctstats trace: exactly one of -otlp or -job is required")
		return 2
	}
	var (
		tr  trace.Trace
		err error
	)
	if *otlp != "" {
		tr, err = readTraceFile(*otlp)
	} else {
		tr, err = fetchTrace(*addr, *job)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsctstats: %v\n", err)
		return 1
	}
	rep := analyzeTrace(tr)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "fsctstats: %v\n", err)
			return 1
		}
		return 0
	}
	renderTraceReport(os.Stdout, rep, *top)
	return 0
}

func readTraceFile(path string) (trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.Trace{}, err
	}
	defer f.Close()
	return trace.ReadOTLP(f)
}

// fetchTrace pulls a job's span tree off a daemon's trace endpoint.
func fetchTrace(addr, job string) (trace.Trace, error) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	resp, err := http.Get(base + "/api/v1/trace/" + job)
	if err != nil {
		return trace.Trace{}, fmt.Errorf("is fsctd running at %s? %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return trace.Trace{}, fmt.Errorf("GET /api/v1/trace/%s: status %d", job, resp.StatusCode)
	}
	return trace.ReadOTLP(resp.Body)
}

// critStep is one hop of the critical path, root to leaf.
type critStep struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	DurNS    int64  `json:"dur_ns"`
	SelfNS   int64  `json:"self_ns"`
	Unclosed bool   `json:"unclosed,omitempty"`
}

// phaseStat aggregates every span sharing one phase name.
type phaseStat struct {
	Name    string `json:"name"`
	Count   int    `json:"count"`
	TotalNS int64  `json:"total_ns"`
	SelfNS  int64  `json:"self_ns"`
	ChildNS int64  `json:"child_ns"`
	MaxNS   int64  `json:"max_ns"`
}

// stragglerInfo names the unit that bounds the run's wall time and the
// phase inside it where that time went.
type stragglerInfo struct {
	Unit    string  `json:"unit"`
	DurNS   int64   `json:"dur_ns"`
	Share   float64 `json:"share"` // fraction of the root span's duration
	Phase   string  `json:"phase,omitempty"`
	PhaseNS int64   `json:"phase_ns,omitempty"`
}

// traceReport is the trace subcommand's analysis of one span tree.
type traceReport struct {
	TraceID   string         `json:"trace_id"`
	Root      string         `json:"root"`
	RootNS    int64          `json:"root_ns"`
	Spans     int            `json:"spans"`
	Unclosed  int            `json:"unclosed"`
	Resource  []trace.Attr   `json:"resource,omitempty"`
	Critical  []critStep     `json:"critical_path"`
	Phases    []phaseStat    `json:"phases,omitempty"`
	Straggler *stragglerInfo `json:"straggler,omitempty"`
}

// analyzeTrace derives the report: the critical path (the span chain
// that bounds wall time — the last finisher at every level), per-phase
// self-vs-child time, and straggler attribution (the slowest unit and
// its dominant phase). Pure function of the trace, so tests feed it
// fixtures.
func analyzeTrace(tr trace.Trace) traceReport {
	rep := traceReport{
		TraceID:  tr.Ctx.Trace.String(),
		Spans:    len(tr.Spans),
		Resource: tr.Resource,
	}
	root := trace.BuildTree(tr.Spans)
	if root == nil {
		return rep
	}
	rep.Root = root.Span.Name
	rep.RootNS = root.Span.DurNS()
	for i := range tr.Spans {
		if tr.Spans[i].Unclosed {
			rep.Unclosed++
		}
	}
	for _, n := range trace.CriticalPath(root) {
		rep.Critical = append(rep.Critical, critStep{
			Name: n.Span.Name, Kind: n.Span.Kind,
			DurNS: n.Span.DurNS(), SelfNS: trace.SelfNS(n),
			Unclosed: n.Span.Unclosed,
		})
	}
	byName := map[string]*phaseStat{}
	var order []string
	var slowest *trace.Node
	var walk func(n *trace.Node)
	walk = func(n *trace.Node) {
		switch n.Span.Kind {
		case trace.SpanPhase:
			st := byName[n.Span.Name]
			if st == nil {
				st = &phaseStat{Name: n.Span.Name}
				byName[n.Span.Name] = st
				order = append(order, n.Span.Name)
			}
			st.Count++
			st.TotalNS += n.Span.DurNS()
			st.SelfNS += trace.SelfNS(n)
			if d := n.Span.DurNS(); d > st.MaxNS {
				st.MaxNS = d
			}
		case trace.SpanUnit:
			if slowest == nil || n.Span.DurNS() > slowest.Span.DurNS() {
				slowest = n
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	for _, name := range order {
		st := byName[name]
		st.ChildNS = st.TotalNS - st.SelfNS
		rep.Phases = append(rep.Phases, *st)
	}
	sort.SliceStable(rep.Phases, func(i, j int) bool { return rep.Phases[i].TotalNS > rep.Phases[j].TotalNS })
	if slowest != nil {
		info := &stragglerInfo{Unit: slowest.Span.Name, DurNS: slowest.Span.DurNS()}
		if rep.RootNS > 0 {
			info.Share = float64(info.DurNS) / float64(rep.RootNS)
		}
		// Dominant phase: the longest single phase span anywhere under
		// the straggling unit — where its wall time actually went.
		var dig func(n *trace.Node)
		dig = func(n *trace.Node) {
			if n.Span.Kind == trace.SpanPhase && n.Span.DurNS() > info.PhaseNS {
				info.Phase, info.PhaseNS = n.Span.Name, n.Span.DurNS()
			}
			for _, c := range n.Children {
				dig(c)
			}
		}
		dig(slowest)
		rep.Straggler = info
	}
	return rep
}

// renderTraceReport writes the human-oriented form: header, resource
// line, the critical path as an indented chain, the top-N phase table
// and the straggler line.
func renderTraceReport(w io.Writer, rep traceReport, top int) {
	fmt.Fprintf(w, "trace %s — %s (%s, %d spans", rep.TraceID, rep.Root,
		fmtSpanDur(time.Duration(rep.RootNS)), rep.Spans)
	if rep.Unclosed > 0 {
		fmt.Fprintf(w, ", %d unclosed", rep.Unclosed)
	}
	fmt.Fprintln(w, ")")
	if len(rep.Resource) > 0 {
		parts := make([]string, 0, len(rep.Resource))
		for _, a := range rep.Resource {
			parts = append(parts, a.Key+"="+a.Value)
		}
		fmt.Fprintf(w, "resource: %s\n", strings.Join(parts, " "))
	}
	fmt.Fprintln(w, "\ncritical path (the chain that bounds wall time):")
	for i, st := range rep.Critical {
		tag := ""
		if st.Unclosed {
			tag = "  (unclosed)"
		}
		fmt.Fprintf(w, "  %s%-*s %8s  self %s%s\n",
			strings.Repeat("  ", i), 24-2*i, st.Name,
			fmtSpanDur(time.Duration(st.DurNS)), fmtSpanDur(time.Duration(st.SelfNS)), tag)
	}
	if len(rep.Phases) > 0 {
		fmt.Fprintln(w, "\nphases (self vs child time):")
		fmt.Fprintf(w, "  %-24s %5s %10s %10s %10s %10s\n", "name", "count", "total", "self", "child", "max")
		for i, p := range rep.Phases {
			if top > 0 && i >= top {
				fmt.Fprintf(w, "  … %d more\n", len(rep.Phases)-top)
				break
			}
			fmt.Fprintf(w, "  %-24s %5d %10s %10s %10s %10s\n", p.Name, p.Count,
				fmtSpanDur(time.Duration(p.TotalNS)), fmtSpanDur(time.Duration(p.SelfNS)),
				fmtSpanDur(time.Duration(p.ChildNS)), fmtSpanDur(time.Duration(p.MaxNS)))
		}
	}
	if s := rep.Straggler; s != nil {
		fmt.Fprintf(w, "\nstraggler: %s (%s, %.0f%% of %s)", s.Unit,
			fmtSpanDur(time.Duration(s.DurNS)), 100*s.Share, rep.Root)
		if s.Phase != "" {
			fmt.Fprintf(w, " — dominant phase %s (%s)", s.Phase, fmtSpanDur(time.Duration(s.PhaseNS)))
		}
		fmt.Fprintln(w)
	}
}

// fmtSpanDur renders a span duration at trace-appropriate precision —
// spans are often sub-millisecond, where the dashboard's fmtDur
// rounding would collapse them.
func fmtSpanDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}
