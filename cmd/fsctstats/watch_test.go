package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// cannedLive is a three-unit job mid-flight: one done, one running, one
// stalled straggler.
func cannedLive() serve.LiveView {
	return serve.LiveView{
		StallThresholdNS: (30 * time.Second).Nanoseconds(),
		Jobs: []serve.LiveJob{
			{
				ID: "j000001", Kind: "faultsim", Circuit: "s3384", Status: serve.StatusRunning,
				TraceID: "4bf92f3577b34da6a3ce929d0e0e4736",
				Progress: &telemetry.Snapshot{
					RunID: "r", JobID: "j000001", Kind: "faultsim", Circuit: "s3384",
					UnitsTotal: 3, UnitsDone: 1, UnitsRunning: 2, UnitsStalled: 1,
					FaultsTotal: 189, FaultsDone: 100, Detected: 60,
					Throughput: 63, ETANS: (2 * time.Second).Nanoseconds(),
					Units: []telemetry.UnitSnapshot{
						{Index: 0, Lo: 0, Hi: 63, Faults: 63, Done: 63, Detected: 40, Finished: true, WallNS: int64(time.Second)},
						{Index: 1, Lo: 63, Hi: 126, Faults: 63, Done: 30, Detected: 20, Running: true, WallNS: int64(time.Second)},
						{Index: 2, Lo: 126, Hi: 189, Faults: 63, Done: 7, Running: true, Stalled: true,
							WallNS: int64(40 * time.Second), IdleNS: int64(35 * time.Second)},
					},
				},
			},
			{ID: "j000002", Kind: "screen", Circuit: "s27", Status: serve.StatusQueued},
		},
	}
}

func TestRenderWatchFrame(t *testing.T) {
	var b strings.Builder
	counters := map[string]float64{
		"fsct_serve_queue_depth_total":  1,
		"fsct_serve_units_stalls_total": 1,
	}
	renderWatch(&b, "localhost:8341", cannedLive(), counters, false)
	out := b.String()
	for _, want := range []string{
		"2 jobs (1 running, 0 done)",
		"queue 1",
		"stall threshold 30s",
		"j000001 faultsim s3384 [running]  trace 4bf92f3577b34da6a3ce929d0e0e4736",
		"units 1/3",
		"faults 100/189 (52.9%)",
		"detected 60",
		"63 f/s",
		"ETA 2s",
		"unit 0   [============] 63/63  done 1s",
		"unit 1   [=====       ] 30/63  running 1s",
		"STALLED idle 35s",
		"j000002 screen s27 [queued]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Error("color escapes leaked into a colorless frame")
	}
}

func TestRenderWatchColorHighlightsStall(t *testing.T) {
	var b strings.Builder
	renderWatch(&b, "a", cannedLive(), nil, true)
	if !strings.Contains(b.String(), "\x1b[1;31mSTALLED") {
		t.Fatalf("stalled unit not highlighted:\n%s", b.String())
	}
}

func TestRenderWatchEmpty(t *testing.T) {
	var b strings.Builder
	renderWatch(&b, "a", serve.LiveView{}, nil, false)
	if !strings.Contains(b.String(), "(no jobs)") {
		t.Fatalf("empty view frame = %q", b.String())
	}
}

func TestBar(t *testing.T) {
	for _, tc := range []struct {
		done, total int
		want        string
	}{
		{0, 10, "[          ]"},
		{5, 10, "[=====     ]"},
		{10, 10, "[==========]"},
		{20, 10, "[==========]"}, // clamped
		{3, 0, "[??????????]"},   // unknown span
	} {
		if got := bar(tc.done, tc.total, 10); got != tc.want {
			t.Errorf("bar(%d,%d) = %q, want %q", tc.done, tc.total, got, tc.want)
		}
	}
}

func TestParseCounters(t *testing.T) {
	text := "# TYPE fsct_x counter\n" +
		"fsct_x_total 42\n" +
		"fsct_pool_utilization{pool=\"faultsim\"} 0.9\n" + // labelled: skipped
		"fsct_run_wall_seconds 1.5\n" +
		"garbage line without value\n" +
		"# EOF\n"
	got := parseCounters(text)
	if got["fsct_x_total"] != 42 || got["fsct_run_wall_seconds"] != 1.5 {
		t.Fatalf("parseCounters = %v", got)
	}
	if _, ok := got[`fsct_pool_utilization{pool="faultsim"}`]; ok {
		t.Fatal("labelled sample not skipped")
	}
	if len(got) != 2 {
		t.Fatalf("parseCounters kept %d samples, want 2: %v", len(got), got)
	}
}

// TestFetchLive drives the HTTP client against a canned daemon.
func TestFetchLive(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/live", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"stall_threshold_ns":30000000000,"jobs":[{"id":"j000001","kind":"screen","circuit":"s27","status":"done","progress":{"units_total":1,"units_done":1,"units_running":0,"units_stalled":0,"faults_total":52,"faults_done":52,"detected":32}}]}`))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("fsct_serve_queue_depth_total 0\n# EOF\n"))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	lv, counters, err := fetchLive(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(lv.Jobs) != 1 || lv.Jobs[0].Progress == nil || lv.Jobs[0].Progress.FaultsDone != 52 {
		t.Fatalf("fetchLive view = %+v", lv)
	}
	if counters["fsct_serve_queue_depth_total"] != 0 {
		t.Fatalf("fetchLive counters = %v", counters)
	}
	var b strings.Builder
	renderWatch(&b, srv.URL, lv, counters, false)
	if !strings.Contains(b.String(), "faults 52/52 (100.0%)") {
		t.Fatalf("rendered fetched frame missing totals:\n%s", b.String())
	}
}
