package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ledger"
)

// rec builds a fsctest run record for circuit at minute min with the
// given headline metrics.
func rec(circuit string, min int, coverage float64, wallNS int64, hits, misses float64) ledger.Record {
	return ledger.Record{
		Schema:  ledger.Schema,
		Time:    time.Date(2026, 8, 1, 12, min, 0, 0, time.UTC),
		CLI:     "fsctest",
		Circuit: circuit,
		Hash:    ledger.HashString(0xfeed),
		WallNS:  wallNS,
		Metrics: map[string]float64{
			"coverage":                     coverage,
			"counters.engine.cache.hits":   hits,
			"counters.engine.cache.misses": misses,
		},
	}
}

func TestValuesDerivesCacheHitRate(t *testing.T) {
	v := values(rec("s27", 0, 99, 5e9, 9, 1))
	if v[keyWall] != 5e9 {
		t.Errorf("wall_ns = %g, want 5e9", v[keyWall])
	}
	if v[keyHitRate] != 0.9 {
		t.Errorf("cache_hit_rate = %g, want 0.9", v[keyHitRate])
	}
	// No cache counters: no hit-rate key rather than a bogus zero.
	if _, ok := values(ledger.Record{WallNS: 1})[keyHitRate]; ok {
		t.Error("cache_hit_rate derived without cache counters")
	}
}

// TestCheckTwoRunRoundTrip is the acceptance round-trip: two runs go
// through the real Append/Read path; check exits zero when the second
// run matches the first and non-zero when a metric drifted.
func TestCheckTwoRunRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	if err := ledger.Append(path, rec("s9234", 0, 98.5, 10e9, 8, 2)); err != nil {
		t.Fatal(err)
	}

	// Run 2, stable: same coverage, wall within the ±50% band.
	if err := ledger.Append(path, rec("s9234", 1, 98.5, 11e9, 8, 2)); err != nil {
		t.Fatal(err)
	}
	recs, err := ledger.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	drifted, err := runCheck(&out, recs, checkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if drifted {
		t.Fatalf("stable pair flagged as drift:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "no drift") {
		t.Errorf("ok summary missing:\n%s", out.String())
	}

	// Run 3, injected coverage drop: must be flagged and must name the
	// metric. A drop is drift even though it is a "decrease".
	if err := ledger.Append(path, rec("s9234", 2, 95.0, 11e9, 8, 2)); err != nil {
		t.Fatal(err)
	}
	recs, err = ledger.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	drifted, err = runCheck(&out, recs, checkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !drifted {
		t.Fatalf("injected coverage drop not flagged:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "DRIFT") || !strings.Contains(out.String(), "coverage") {
		t.Errorf("drift report does not name the metric:\n%s", out.String())
	}
}

// TestCheckRollingMedianAbsorbsOutlier: with a window of prior runs the
// baseline is their median, so one historic outlier must not poison the
// comparison.
func TestCheckRollingMedianAbsorbsOutlier(t *testing.T) {
	recs := []ledger.Record{
		rec("s27", 0, 99, 10e9, 5, 5),
		rec("s27", 1, 99, 90e9, 5, 5), // historic wall-time outlier
		rec("s27", 2, 99, 10e9, 5, 5),
		rec("s27", 3, 99, 11e9, 5, 5), // newest: near the median, fine
	}
	var out bytes.Buffer
	drifted, err := runCheck(&out, recs, checkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if drifted {
		t.Fatalf("median baseline did not absorb the outlier:\n%s", out.String())
	}
}

// TestCheckSeriesAreIndependent: drift is judged within a (CLI,
// circuit) series; a single record of another circuit has no baseline
// and must pass vacuously.
func TestCheckSeriesAreIndependent(t *testing.T) {
	recs := []ledger.Record{
		rec("s27", 0, 99, 10e9, 5, 5),
		rec("s27", 1, 99, 10e9, 5, 5),
		rec("s1423", 2, 42, 500e9, 0, 10), // lone run, wildly different numbers
	}
	var out bytes.Buffer
	drifted, err := runCheck(&out, recs, checkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if drifted {
		t.Fatalf("lone series produced drift:\n%s", out.String())
	}
}

func TestCheckThresholdOverrideAndKeys(t *testing.T) {
	recs := []ledger.Record{
		rec("s27", 0, 100, 10e9, 5, 5),
		rec("s27", 1, 80, 10e9, 5, 5), // -20% coverage
	}
	// Explicit generous threshold: the drop is inside ±30%.
	var out bytes.Buffer
	drifted, err := runCheck(&out, recs, checkOptions{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if drifted {
		t.Fatalf("-threshold 0.3 did not widen the band:\n%s", out.String())
	}
	// Restricting -keys to wall_ns hides the coverage drop entirely.
	out.Reset()
	drifted, err = runCheck(&out, recs, checkOptions{Keys: []string{keyWall}})
	if err != nil {
		t.Fatal(err)
	}
	if drifted {
		t.Fatalf("coverage checked despite -keys wall_ns:\n%s", out.String())
	}
}

func TestCheckJSONOutput(t *testing.T) {
	recs := []ledger.Record{
		rec("s27", 0, 100, 10e9, 5, 5),
		rec("s27", 1, 50, 10e9, 5, 5),
	}
	var out bytes.Buffer
	drifted, err := runCheck(&out, recs, checkOptions{JSON: true})
	if err != nil {
		t.Fatal(err)
	}
	if !drifted {
		t.Fatal("halved coverage not flagged")
	}
	var doc struct {
		Checked int     `json:"checked"`
		Drifts  []drift `json:"drifts"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("check -json output not JSON: %v\n%s", err, out.String())
	}
	if doc.Checked != 1 || len(doc.Drifts) != 1 || doc.Drifts[0].Key != "coverage" {
		t.Fatalf("unexpected JSON document: %+v", doc)
	}
}

func TestListAndTrendRender(t *testing.T) {
	recs := []ledger.Record{
		rec("s27", 0, 99.5, 10e9, 5, 5),
		rec("s27", 1, 99.5, 10e9, 5, 5),
	}
	recs[1].Hash = ledger.HashString(0xbeef) // structure changed between runs

	var out bytes.Buffer
	if err := runList(&out, recs, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "s27") || !strings.Contains(out.String(), "2 record(s)") {
		t.Errorf("list output wrong:\n%s", out.String())
	}

	out.Reset()
	if err := runTrend(&out, recs, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "fsctest s27:") {
		t.Errorf("trend misses the series header:\n%s", got)
	}
	if !strings.Contains(got, "99.50%") || !strings.Contains(got, "50.0%") {
		t.Errorf("trend misses coverage / cache-hit columns:\n%s", got)
	}
	if !strings.Contains(got, "structural hash changed") {
		t.Errorf("trend does not call out the hash change:\n%s", got)
	}

	out.Reset()
	if err := runTrend(&out, recs, true); err != nil {
		t.Fatal(err)
	}
	var doc map[string][]trendRow
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("trend -json output not JSON: %v\n%s", err, out.String())
	}
	rows := doc["fsctest s27"]
	if len(rows) != 2 || rows[0].Coverage == nil || *rows[0].Coverage != 99.5 || !rows[1].HashChange {
		t.Fatalf("unexpected trend JSON: %+v", rows)
	}
}

// srvRec builds a daemon (cmd/fsctd) run record: the CLI is always
// "fsctd" and the job kind lives in the server metadata.
func srvRec(kind, circuit string, min int, coverage float64) ledger.Record {
	r := rec(circuit, min, coverage, 1e9, 5, 5)
	r.CLI = "fsctd"
	r.Server = &ledger.ServerMeta{
		JobID: "j000001", Kind: kind, Status: "done", QueueNS: 1000,
	}
	return r
}

// TestMixedLedgerTolerated: a ledger holding pre-service records (no
// "server" field at all) alongside daemon records must parse, and the
// old records must come back with nil Server rather than a zero value.
func TestMixedLedgerTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	if err := ledger.Append(path, rec("s27", 0, 99, 1e9, 5, 5), srvRec("flow", "s27", 1, 99)); err != nil {
		t.Fatal(err)
	}
	recs, err := ledger.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records, want 2", len(recs))
	}
	if recs[0].Server != nil {
		t.Errorf("batch record unmarshaled with Server = %+v, want nil", recs[0].Server)
	}
	if recs[1].Server == nil || recs[1].Server.Kind != "flow" {
		t.Errorf("daemon record lost its server metadata: %+v", recs[1].Server)
	}
	// The batch record must not carry a "server" key on disk either —
	// old readers would choke on fields they cannot ignore, and the
	// omitempty contract is what keeps the schema backward-readable.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if strings.Contains(lines[0], `"server"`) {
		t.Errorf("batch record serialized a server field:\n%s", lines[0])
	}
	if !strings.Contains(lines[1], `"server"`) {
		t.Errorf("daemon record dropped its server field:\n%s", lines[1])
	}

	// Every subcommand must render the mixed set without error.
	var out bytes.Buffer
	if err := runList(&out, recs, false); err != nil {
		t.Fatalf("list over mixed ledger: %v", err)
	}
	out.Reset()
	if err := runTrend(&out, recs, false); err != nil {
		t.Fatalf("trend over mixed ledger: %v", err)
	}
	out.Reset()
	if _, err := runCheck(&out, recs, checkOptions{}); err != nil {
		t.Fatalf("check over mixed ledger: %v", err)
	}
}

// TestServerKindSplitsSeries: daemon jobs of different kinds over the
// same circuit are different workloads; grouping them into one series
// would drift-check a flow run against a faultsim run.
func TestServerKindSplitsSeries(t *testing.T) {
	recs := []ledger.Record{
		srvRec("flow", "s27", 0, 99),
		srvRec("faultsim", "s27", 1, 42), // wildly different coverage, fine: other kind
		srvRec("flow", "s27", 2, 99),
		srvRec("faultsim", "s27", 3, 42),
	}
	keys, byGroup := groups(recs)
	if len(keys) != 2 {
		t.Fatalf("groups = %v, want 2 series", keys)
	}
	if len(byGroup["fsctd/flow s27"]) != 2 || len(byGroup["fsctd/faultsim s27"]) != 2 {
		t.Fatalf("series split wrong: %v", keys)
	}
	var out bytes.Buffer
	drifted, err := runCheck(&out, recs, checkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if drifted {
		t.Fatalf("cross-kind comparison leaked into drift check:\n%s", out.String())
	}
}

func TestParseKeys(t *testing.T) {
	if got := parseKeys(""); got != nil {
		t.Errorf("parseKeys(\"\") = %v", got)
	}
	got := parseKeys("coverage, wall_ns,,cache_hit_rate ")
	want := []string{"coverage", "wall_ns", "cache_hit_rate"}
	if len(got) != len(want) {
		t.Fatalf("parseKeys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseKeys = %v, want %v", got, want)
		}
	}
}
