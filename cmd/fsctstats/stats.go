package main

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/ledger"
	"repro/internal/metriccmp"
)

// Derived metric keys synthesized from each record, alongside its
// flattened metrics map: the run's wall time and the engine artifact
// cache hit rate — the three headline trend columns.
const (
	keyWall    = "wall_ns"
	keyHitRate = "cache_hit_rate"
)

// checkThresholds is the per-key allowed |ratio| for `fsctstats check`,
// looked up via metriccmp.ThresholdFor (exact dotted key first, then the
// final segment). Coverage is expected to be deterministic for a fixed
// circuit/seed, so its band is tight; wall time is noisy; cache hit
// rate sits between.
var checkThresholds = map[string]float64{
	"coverage":   0.005,
	keyWall:      0.50,
	keyHitRate:   0.20,
	"faults":     0.0, // fault counts must not move at all
	"undetected": 0.0,
}

// defaultCheckKeys are the metrics checked when -keys is not given.
var defaultCheckKeys = []string{"coverage", keyWall, keyHitRate}

// values builds the record's comparable metric map: every flattened
// metric, plus the derived wall_ns and cache_hit_rate keys.
func values(r ledger.Record) map[string]float64 {
	out := make(map[string]float64, len(r.Metrics)+2)
	for k, v := range r.Metrics {
		out[k] = v
	}
	out[keyWall] = float64(r.WallNS)
	hits, okh := r.Metrics["counters.engine.cache.hits"]
	misses, okm := r.Metrics["counters.engine.cache.misses"]
	if okh && okm && hits+misses > 0 {
		out[keyHitRate] = hits / (hits + misses)
	}
	return out
}

// groupKey identifies a trend series: runs of the same CLI over the
// same circuit are comparable, others are not. Daemon records (from
// cmd/fsctd) all share one CLI name, so their job kind joins the key —
// a flow job and a faultsim job over the same circuit report different
// metrics and must not drift-check against each other. Records without
// server metadata (every record written before the service layer
// existed) keep their original key unchanged.
func groupKey(r ledger.Record) string {
	if r.Server != nil && r.Server.Kind != "" {
		return r.CLI + "/" + r.Server.Kind + " " + r.Circuit
	}
	return r.CLI + " " + r.Circuit
}

// groups splits records into time-ordered trend series, returning the
// sorted group keys and the grouped records.
func groups(recs []ledger.Record) ([]string, map[string][]ledger.Record) {
	m := map[string][]ledger.Record{}
	for _, r := range recs {
		m[groupKey(r)] = append(m[groupKey(r)], r)
	}
	keys := make([]string, 0, len(m))
	for k, g := range m {
		sort.SliceStable(g, func(i, j int) bool { return g[i].Time.Before(g[j].Time) })
		m[k] = g
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, m
}

// runList prints one line per record (or the records as JSON).
func runList(w io.Writer, recs []ledger.Record, jsonOut bool) error {
	if jsonOut {
		return writeJSON(w, recs)
	}
	fmt.Fprintf(w, "%-20s %-10s %-10s %5s %10s %9s\n",
		"TIME", "CLI", "CIRCUIT", "EXIT", "WALL", "COVERAGE")
	for _, r := range recs {
		fmt.Fprintf(w, "%-20s %-10s %-10s %5d %10s %9s\n",
			r.Time.Format("2006-01-02 15:04:05"), r.CLI, orDash(r.Circuit),
			r.Exit, time.Duration(r.WallNS).Round(time.Millisecond),
			fmtOpt(r.Metrics["coverage"], r.Metrics != nil, "%.2f%%"))
	}
	fmt.Fprintf(w, "%d record(s)\n", len(recs))
	return nil
}

// trendRow is one run within a trend series, with the headline columns
// extracted.
type trendRow struct {
	Time       time.Time `json:"time"`
	Exit       int       `json:"exit"`
	WallNS     int64     `json:"wall_ns"`
	Coverage   *float64  `json:"coverage,omitempty"`
	CacheHit   *float64  `json:"cache_hit_rate,omitempty"`
	Hash       string    `json:"hash,omitempty"`
	HashChange bool      `json:"hash_changed,omitempty"`
}

// runTrend prints per-(CLI, circuit) series of runtime, fault coverage
// and cache hit rate — the cross-run view of the numbers each single
// run prints.
func runTrend(w io.Writer, recs []ledger.Record, jsonOut bool) error {
	keys, byGroup := groups(recs)
	out := map[string][]trendRow{}
	for _, k := range keys {
		g := byGroup[k]
		rows := make([]trendRow, len(g))
		for i, r := range g {
			v := values(r)
			rows[i] = trendRow{Time: r.Time, Exit: r.Exit, WallNS: r.WallNS, Hash: r.Hash}
			if c, ok := v["coverage"]; ok {
				cc := c
				rows[i].Coverage = &cc
			}
			if h, ok := v[keyHitRate]; ok {
				hh := h
				rows[i].CacheHit = &hh
			}
			rows[i].HashChange = i > 0 && r.Hash != g[i-1].Hash
		}
		out[k] = rows
	}
	if jsonOut {
		return writeJSON(w, out)
	}
	for _, k := range keys {
		fmt.Fprintf(w, "%s:\n", k)
		fmt.Fprintf(w, "  %-20s %5s %10s %9s %9s\n", "TIME", "EXIT", "WALL", "COVERAGE", "CACHE-HIT")
		for _, row := range out[k] {
			note := ""
			if row.HashChange {
				note = "  (structural hash changed)"
			}
			fmt.Fprintf(w, "  %-20s %5d %10s %9s %9s%s\n",
				row.Time.Format("2006-01-02 15:04:05"), row.Exit,
				time.Duration(row.WallNS).Round(time.Millisecond),
				fmtPtr(row.Coverage, "%.2f%%"), fmtPtr(pct(row.CacheHit), "%.1f%%"), note)
		}
	}
	return nil
}

// checkOptions configures runCheck.
type checkOptions struct {
	Keys      []string // metric keys to compare (default defaultCheckKeys)
	Window    int      // rolling-median window over prior runs (default 5)
	Threshold float64  // >0 overrides every per-key threshold
	JSON      bool
	Verbose   bool
}

// drift is one flagged metric: the newest run's value left the allowed
// band around the rolling median of the prior runs.
type drift struct {
	Group   string  `json:"group"`
	Key     string  `json:"key"`
	Median  float64 `json:"median"`
	Latest  float64 `json:"latest"`
	Ratio   float64 `json:"ratio"`
	Allowed float64 `json:"allowed"`
}

// runCheck compares, within every (CLI, circuit) series, the newest
// run's metrics against the rolling median of up to Window prior runs,
// and reports the drifts — the cross-run sibling of cmd/benchdiff's
// commit-to-commit gate. Returns true when any metric drifted (the CLI
// exits non-zero). Series with no prior runs pass vacuously: a fresh
// ledger has no baseline to drift from.
func runCheck(w io.Writer, recs []ledger.Record, opt checkOptions) (bool, error) {
	keys := opt.Keys
	if len(keys) == 0 {
		keys = defaultCheckKeys
	}
	window := opt.Window
	if window <= 0 {
		window = 5
	}
	var drifts []drift
	checked := 0
	groupKeys, byGroup := groups(recs)
	for _, gk := range groupKeys {
		g := byGroup[gk]
		if len(g) < 2 {
			continue
		}
		latest := values(g[len(g)-1])
		prior := g[:len(g)-1]
		if len(prior) > window {
			prior = prior[len(prior)-window:]
		}
		baseline := medians(prior, keys)
		checked++
		for _, key := range keys {
			old, okOld := baseline[key]
			now, okNow := latest[key]
			if !okOld || !okNow {
				continue // key absent on one side: nothing to compare
			}
			allowed := opt.Threshold
			if allowed <= 0 {
				allowed, _ = metriccmp.ThresholdFor(key, checkThresholds)
			}
			res := metriccmp.Compare(
				map[string]float64{key: old}, map[string]float64{key: now},
				map[string]float64{key: allowed})
			for _, d := range res.Deltas {
				if opt.Verbose {
					fmt.Fprintf(w, "%s: %s median=%.4g latest=%.4g ratio=%+.2f%% (allowed ±%.2f%%)\n",
						gk, key, old, now, 100*d.Ratio, 100*allowed)
				}
				if d.Drifted() {
					drifts = append(drifts, drift{
						Group: gk, Key: key, Median: old, Latest: now,
						Ratio: d.Ratio, Allowed: allowed,
					})
				}
			}
		}
	}
	if opt.JSON {
		if err := writeJSON(w, map[string]any{"checked": checked, "drifts": drifts}); err != nil {
			return false, err
		}
		return len(drifts) > 0, nil
	}
	for _, d := range drifts {
		fmt.Fprintf(w, "DRIFT %s: %s %.4g -> %.4g (%+.2f%%, allowed ±%.2f%%)\n",
			d.Group, d.Key, d.Median, d.Latest, 100*d.Ratio, 100*d.Allowed)
	}
	if len(drifts) == 0 {
		fmt.Fprintf(w, "ok: %d series checked, no drift\n", checked)
	}
	return len(drifts) > 0, nil
}

// medians computes, per key, the median of the key's values over the
// records that carry it.
func medians(recs []ledger.Record, keys []string) map[string]float64 {
	out := map[string]float64{}
	for _, key := range keys {
		var vals []float64
		for _, r := range recs {
			if v, ok := values(r)[key]; ok {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			continue
		}
		sort.Float64s(vals)
		mid := len(vals) / 2
		if len(vals)%2 == 1 {
			out[key] = vals[mid]
		} else {
			out[key] = (vals[mid-1] + vals[mid]) / 2
		}
	}
	return out
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fmtOpt(v float64, ok bool, format string) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf(format, v)
}

func fmtPtr(v *float64, format string) string {
	if v == nil {
		return "-"
	}
	return fmt.Sprintf(format, *v)
}

// pct scales a ratio pointer to percent for display.
func pct(v *float64) *float64 {
	if v == nil {
		return nil
	}
	p := *v * 100
	return &p
}

// parseKeys splits a -keys list, dropping empty segments.
func parseKeys(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, k := range strings.Split(s, ",") {
		if k = strings.TrimSpace(k); k != "" {
			out = append(out, k)
		}
	}
	return out
}
