// Command fsctstats queries the JSONL run ledger the other commands
// append to with -ledger (see cmd/internal/obsflags and
// internal/ledger): every instrumented run of fsctest, faultsim,
// scaninsert, chainsim, diagnose, testability or mktables leaves one
// record per circuit, carrying the flattened metrics snapshot, the
// circuit's structural hash, the flags used, the exit status and the
// wall time.
//
// Usage:
//
//	fsctstats list  -ledger runs.jsonl [-circuit s9234] [-cli fsctest] [-since 24h] [-last 20] [-json]
//	fsctstats trend -ledger runs.jsonl [filters] [-json]
//	fsctstats check -ledger runs.jsonl [filters] [-window 5] [-keys coverage,wall_ns] [-threshold 0.1] [-v] [-strict] [-json]
//	fsctstats watch [-addr localhost:8341] [-interval 1s] [-once]
//	fsctstats trace (-otlp spans.json | -job j000001 [-addr localhost:8341]) [-top 10] [-json]
//
// list prints the matching records, newest last. trend groups them into
// per-(CLI, circuit) series and shows the cross-run evolution of the
// headline numbers: runtime, fault coverage and engine cache hit rate.
// check is the regression gate: within each series it compares the
// newest run against the rolling median of up to -window prior runs and
// exits non-zero when any checked metric drifts beyond its allowance in
// either direction — a coverage drop is as suspicious as a runtime
// rise. It shares its threshold semantics with cmd/benchdiff via
// internal/metriccmp: -keys entries match a flattened metric key
// exactly or by final segment, and -threshold overrides every per-key
// allowance. Series with no prior runs pass vacuously; an empty match
// set warns on stderr (and fails under -strict, so CI catches a
// mistyped ledger path).
//
// watch is the live counterpart: instead of the ledger it polls a
// running fsctd daemon's /api/v1/live and /metrics endpoints and
// renders a terminal dashboard — one block per job with a unit
// completion bar, faults-per-second throughput, the ETA derived from
// it, and any unit the straggler watchdog flagged highlighted as
// STALLED. -once prints a single frame and exits (scripts, CI).
//
// trace analyzes an exported span tree — a CLI run's -otlpfile, or a
// job's tree fetched live from fsctd's /api/v1/trace/{job} — and
// reports the critical path (the span chain that bounds wall time, the
// last finisher at every level), per-phase self-vs-child time, and
// straggler attribution: which unit held the run up and in which phase
// its time went.
//
// -since accepts a Go duration ("36h") or an RFC 3339 timestamp.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/ledger"
)

func main() {
	if len(os.Args) < 2 || os.Args[1] == "-h" || os.Args[1] == "-help" || os.Args[1] == "--help" {
		usage()
		os.Exit(2)
	}
	sub := os.Args[1]
	if sub == "watch" { // live daemon dashboard: own flags, no ledger
		os.Exit(runWatchCmd(os.Args[2:]))
	}
	if sub == "trace" { // span-tree analysis: own flags, no ledger
		os.Exit(runTraceCmd(os.Args[2:]))
	}
	fs := flag.NewFlagSet("fsctstats "+sub, flag.ExitOnError)
	var (
		path    = fs.String("ledger", "", "run ledger `file` to query (required)")
		circuit = fs.String("circuit", "", "only records for this circuit")
		cli     = fs.String("cli", "", "only records appended by this command")
		since   = fs.String("since", "", "only records newer than this (duration like \"36h\", or RFC 3339)")
		last    = fs.Int("last", 0, "only the newest N matching records")
		jsonOut = fs.Bool("json", false, "machine-readable JSON output")
		// check only:
		window    = fs.Int("window", 5, "check: rolling-median window of prior runs")
		keys      = fs.String("keys", "", "check: comma-separated metric keys (default coverage,wall_ns,cache_hit_rate)")
		threshold = fs.Float64("threshold", 0, "check: override every per-key allowance with this ratio (0.1 = ±10%)")
		verbose   = fs.Bool("v", false, "check: print every comparison, not just drifts")
		strict    = fs.Bool("strict", false, "check: exit non-zero when no records match (an empty gate usually means a broken -ledger path or filter)")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if *path == "" {
		fail(fmt.Errorf("-ledger is required"))
	}

	filter := ledger.Filter{CLI: *cli, Circuit: *circuit, Last: *last}
	if *since != "" {
		t, err := parseSince(*since)
		if err != nil {
			fail(err)
		}
		filter.Since = t
	}
	recs, err := ledger.Read(*path)
	if err != nil {
		fail(err)
	}
	recs = filter.Apply(recs)

	switch sub {
	case "list":
		err = runList(os.Stdout, recs, *jsonOut)
	case "trend":
		err = runTrend(os.Stdout, recs, *jsonOut)
	case "check":
		// An empty gate passes vacuously, which hides a mistyped path or
		// an over-narrow filter from CI. Warn always; -strict turns the
		// warning into a failure.
		if len(recs) == 0 {
			fmt.Fprintln(os.Stderr, "fsctstats: warning: no ledger records match (empty ledger, or filters excluded everything) — the check gates nothing")
			if *strict {
				os.Exit(1)
			}
		}
		var drifted bool
		drifted, err = runCheck(os.Stdout, recs, checkOptions{
			Keys:      parseKeys(*keys),
			Window:    *window,
			Threshold: *threshold,
			JSON:      *jsonOut,
			Verbose:   *verbose,
		})
		if err == nil && drifted {
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "fsctstats: unknown subcommand %q\n\n", sub)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}
}

// parseSince accepts a relative duration ("36h") or an absolute
// RFC 3339 timestamp.
func parseSince(s string) (time.Time, error) {
	if d, err := time.ParseDuration(s); err == nil {
		return time.Now().Add(-d), nil
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	return time.Time{}, fmt.Errorf("-since %q: want a duration (\"36h\") or an RFC 3339 time", s)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: fsctstats <list|trend|check|watch|trace> [flags]

  list   print the matching ledger records, newest last
  trend  per-(CLI, circuit) evolution of runtime, coverage, cache hit rate
  check  flag metric drift of the newest run vs the rolling median of
         prior runs; exits 1 on drift (-strict: also on an empty match)
  watch  live terminal dashboard over a running fsctd daemon's
         /api/v1/live: per-job unit progress bars, throughput, ETA and
         highlighted stragglers
  trace  critical path, per-phase self time and straggler attribution
         over an exported span tree (-otlp file, or -job from a daemon)

list, trend and check query a -ledger file; watch and trace poll -addr.
run 'fsctstats <subcommand> -h' for the subcommand's flags
`)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "fsctstats: %v\n", err)
	os.Exit(1)
}
