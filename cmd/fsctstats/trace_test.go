package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// shardedTrace is a 3-unit sharded run: unit 1 is the slowest (the
// straggler), and its faultsim.seq phase with the faultsim pool span
// inside holds nearly all of its time.
func shardedTrace() trace.Trace {
	id := func(b byte) trace.SpanID { return trace.SpanID{7: b} }
	ctx := trace.Context{
		Trace: trace.TraceID{15: 0xaa},
		Span:  id(1),
		Flags: trace.FlagSampled,
	}
	return trace.Trace{
		Ctx:      ctx,
		OriginNS: 1_700_000_000_000_000_000,
		Resource: []trace.Attr{{Key: "kind", Value: "faultsim"}, {Key: "circuit", Value: "s3384"}},
		Spans: []trace.Span{
			{Name: "job j000042", Kind: trace.SpanRoot, ID: id(1), StartNS: 0, EndNS: 1_000_000},
			{Name: "unit 0", Kind: trace.SpanUnit, ID: id(2), Parent: id(1), StartNS: 10_000, EndNS: 400_000},
			{Name: "unit 1", Kind: trace.SpanUnit, ID: id(3), Parent: id(1), StartNS: 10_000, EndNS: 990_000},
			{Name: "unit 2", Kind: trace.SpanUnit, ID: id(4), Parent: id(1), StartNS: 10_000, EndNS: 600_000},
			{Name: "faultsim.seq", Kind: trace.SpanPhase, ID: id(5), Parent: id(3), StartNS: 20_000, EndNS: 970_000},
			{Name: "faultsim", Kind: trace.SpanPool, ID: id(6), Parent: id(5), StartNS: 30_000, EndNS: 960_000},
			{Name: "faultsim.seq", Kind: trace.SpanPhase, ID: id(7), Parent: id(2), StartNS: 20_000, EndNS: 390_000},
		},
	}
}

// TestAnalyzeTraceCriticalPath pins the acceptance criterion: on a
// 3-unit sharded run, the reported critical path is the slowest unit's
// chain, root to leaf.
func TestAnalyzeTraceCriticalPath(t *testing.T) {
	rep := analyzeTrace(shardedTrace())
	if rep.Root != "job j000042" || rep.RootNS != 1_000_000 || rep.Spans != 7 {
		t.Fatalf("report header wrong: %+v", rep)
	}
	var names []string
	for _, st := range rep.Critical {
		names = append(names, st.Name)
	}
	want := []string{"job j000042", "unit 1", "faultsim.seq", "faultsim"}
	if strings.Join(names, ">") != strings.Join(want, ">") {
		t.Fatalf("critical path = %v, want %v (the slowest unit's chain)", names, want)
	}
	if rep.Critical[1].DurNS != 980_000 {
		t.Fatalf("critical unit dur = %d, want 980000", rep.Critical[1].DurNS)
	}

	if s := rep.Straggler; s == nil || s.Unit != "unit 1" || s.DurNS != 980_000 ||
		s.Phase != "faultsim.seq" || s.PhaseNS != 950_000 {
		t.Fatalf("straggler attribution wrong: %+v", rep.Straggler)
	}

	// Phase table: both faultsim.seq spans aggregate into one row; its
	// self time excludes the pool child inside unit 1's instance.
	if len(rep.Phases) != 1 {
		t.Fatalf("phase rows = %+v, want one aggregated faultsim.seq", rep.Phases)
	}
	p := rep.Phases[0]
	if p.Name != "faultsim.seq" || p.Count != 2 || p.TotalNS != 950_000+370_000 ||
		p.ChildNS != 930_000 || p.SelfNS != p.TotalNS-p.ChildNS || p.MaxNS != 950_000 {
		t.Fatalf("phase aggregate wrong: %+v", p)
	}
}

// TestTraceReportRoundTripFile: the OTLP file a session exports is
// exactly what the subcommand reads back, and the rendered report
// carries the headline facts.
func TestTraceReportRoundTripFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteOTLP(f, shardedTrace()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := readTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	renderTraceReport(&b, analyzeTrace(tr), 10)
	out := b.String()
	for _, want := range []string{
		"trace 000000000000000000000000000000aa — job j000042 (1ms, 7 spans)",
		"resource: kind=faultsim circuit=s3384",
		"critical path",
		"unit 1",
		"straggler: unit 1 (980µs, 98% of job j000042) — dominant phase faultsim.seq (950µs)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestFetchTraceFromDaemon drives the HTTP fetch path against a canned
// trace endpoint.
func TestFetchTraceFromDaemon(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/trace/j000042", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = trace.WriteOTLP(w, shardedTrace())
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	tr, err := fetchTrace(srv.URL, "j000042")
	if err != nil {
		t.Fatal(err)
	}
	rep := analyzeTrace(tr)
	if len(rep.Critical) != 4 || rep.Critical[1].Name != "unit 1" {
		t.Fatalf("fetched critical path wrong: %+v", rep.Critical)
	}
	if _, err := fetchTrace(srv.URL, "missing"); err == nil {
		t.Fatal("404 must surface as an error")
	}
}
