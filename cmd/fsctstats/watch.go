package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// runWatchCmd is the watch subcommand: a terminal dashboard over a
// running fsctd daemon's /api/v1/live snapshot. Returns the process
// exit code.
func runWatchCmd(args []string) int {
	fs := flag.NewFlagSet("fsctstats watch", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "localhost:8341", "fsctd daemon `address` to watch")
		interval = fs.Duration("interval", time.Second, "poll/refresh interval")
		once     = fs.Bool("once", false, "render one frame and exit (scripts, CI)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	tty := stdoutIsTTY() && !*once
	for {
		lv, counters, err := fetchLive(base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsctstats: %v\n", err)
			return 1
		}
		var b strings.Builder
		if tty {
			b.WriteString("\x1b[2J\x1b[H") // clear + home between frames
		}
		renderWatch(&b, *addr, lv, counters, tty)
		os.Stdout.WriteString(b.String())
		if *once {
			return 0
		}
		time.Sleep(*interval)
	}
}

// fetchLive pulls one dashboard's worth of daemon state: the live
// unit-progress view plus the label-free /metrics samples (queue depth,
// lifetime job counters).
func fetchLive(base string) (serve.LiveView, map[string]float64, error) {
	var lv serve.LiveView
	resp, err := http.Get(base + "/api/v1/live")
	if err != nil {
		return lv, nil, fmt.Errorf("is fsctd running at %s? %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return lv, nil, fmt.Errorf("GET /api/v1/live: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&lv); err != nil {
		return lv, nil, fmt.Errorf("GET /api/v1/live: %w", err)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		return lv, nil, err
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		return lv, nil, err
	}
	return lv, parseCounters(string(body)), nil
}

// parseCounters extracts the label-free samples of an OpenMetrics
// exposition into name -> value (labelled samples and comments are
// skipped — the dashboard only needs the scalar server counters).
func parseCounters(text string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		out[name] = v
	}
	return out
}

// renderWatch writes one dashboard frame: a header with queue and job
// totals, then one block per job — completion bar, throughput, ETA and
// the per-unit rows with stragglers highlighted. Pure function of its
// inputs (the tests feed it canned views); color only decorates, the
// plain text carries everything.
func renderWatch(w io.Writer, addr string, lv serve.LiveView, counters map[string]float64, color bool) {
	running, done := 0, 0
	for _, j := range lv.Jobs {
		switch j.Status {
		case serve.StatusRunning:
			running++
		case serve.StatusDone:
			done++
		}
	}
	fmt.Fprintf(w, "fsctd %s — %d jobs (%d running, %d done)  queue %d  stalls %d  stall threshold %s\n",
		addr, len(lv.Jobs), running, done,
		int(counters["fsct_serve_queue_depth_total"]),
		int(counters["fsct_serve_units_stalls_total"]),
		fmtDur(time.Duration(lv.StallThresholdNS)))
	for _, j := range lv.Jobs {
		renderJob(w, j, color)
	}
	if len(lv.Jobs) == 0 {
		fmt.Fprintln(w, "(no jobs)")
	}
}

func renderJob(w io.Writer, j serve.LiveJob, color bool) {
	fmt.Fprintf(w, "\n%s %s %s [%s]", j.ID, j.Kind, j.Circuit, j.Status)
	if j.TraceID != "" {
		// The job's distributed-trace identity: the handle to paste into
		// `fsctstats trace -job` or an external trace viewer.
		fmt.Fprintf(w, "  trace %s", j.TraceID)
	}
	p := j.Progress
	if p == nil { // queued: no runner has planned it yet
		fmt.Fprintln(w)
		return
	}
	fmt.Fprintf(w, "  units %d/%d", p.UnitsDone, p.UnitsTotal)
	if p.FaultsTotal > 0 {
		fmt.Fprintf(w, "  faults %d/%d (%.1f%%)", p.FaultsDone, p.FaultsTotal,
			100*float64(p.FaultsDone)/float64(p.FaultsTotal))
	}
	fmt.Fprintf(w, "  detected %d", p.Detected)
	if p.Throughput > 0 {
		fmt.Fprintf(w, "  %s", fmtRate(p.Throughput))
	}
	if p.ETANS > 0 {
		fmt.Fprintf(w, "  ETA %s", fmtDur(time.Duration(p.ETANS)))
	}
	fmt.Fprintln(w)
	for _, u := range p.Units {
		renderUnit(w, u, color)
	}
}

func renderUnit(w io.Writer, u telemetry.UnitSnapshot, color bool) {
	fmt.Fprintf(w, "  unit %-3d %s %d/%d", u.Index, bar(u.Done, u.Faults, 12), u.Done, u.Faults)
	switch {
	case u.Stalled:
		tag := fmt.Sprintf("STALLED idle %s", fmtDur(time.Duration(u.IdleNS)))
		if color {
			tag = "\x1b[1;31m" + tag + "\x1b[0m" // bold red: the row to look at
		}
		fmt.Fprintf(w, "  %s", tag)
	case u.Running:
		fmt.Fprintf(w, "  running %s", fmtDur(time.Duration(u.WallNS)))
	case u.Finished && u.Error != "":
		fmt.Fprintf(w, "  failed: %s", u.Error)
	case u.Finished:
		fmt.Fprintf(w, "  done %s", fmtDur(time.Duration(u.WallNS)))
	default:
		fmt.Fprint(w, "  pending")
	}
	fmt.Fprintln(w)
}

// bar renders a width-cell completion bar. Unknown totals (a
// whole-axis unit still running) render as indeterminate.
func bar(done, total, width int) string {
	if total <= 0 {
		return "[" + strings.Repeat("?", width) + "]"
	}
	filled := done * width / total
	if filled > width {
		filled = width
	}
	return "[" + strings.Repeat("=", filled) + strings.Repeat(" ", width-filled) + "]"
}

// fmtDur rounds a duration to a dashboard-friendly precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(100 * time.Millisecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

// fmtRate renders a faults-per-second throughput.
func fmtRate(fps float64) string {
	if fps >= 1000 {
		return fmt.Sprintf("%.1f kf/s", fps/1000)
	}
	return fmt.Sprintf("%.0f f/s", fps)
}

// stdoutIsTTY reports whether stdout is a character device, selecting
// full-screen frame redraws over append-only output.
func stdoutIsTTY() bool {
	fi, err := os.Stdout.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
