// Command testability reports SCOAP controllability/observability
// measures for a circuit's scan-mode (or plain combinational) model:
// distribution of testability costs and the hardest nets — the classic
// candidates for test point insertion.
//
// Usage:
//
//	testability -profile s9234 -scale 0.1 [-scan] [-top 15]
//	testability -in circuit.bench
//	testability -profile s38584 -scan -metrics -trace
//
// The observability flags are the shared surface (see
// cmd/internal/obsflags): -metrics appends per-phase wall times
// (generate, insert, scoap), -trace streams the phase annotations to
// stderr, -tracefile exports the timeline as a Chrome trace-event
// file, -progress renders live progress, -debug addr serves
// /debug/pprof and /debug/vars.
//
// Unlike the fault-driven commands there is no -workers flag here:
// SCOAP analysis is one levelized forward pass (controllability) and
// one backward pass (observability) over the circuit, with no fault
// axis to shard — each gate's measure depends on its fanin/fanout
// measures, so the passes are inherently sequential and already take
// milliseconds on the largest suite circuits.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/cmd/internal/obsflags"
	"repro/cmd/internal/specflags"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// sess is the observability session; every exit goes through exit so
// Close runs (os.Exit skips defers and -tracefile is written on Close).
var sess *obsflags.Session

func exit(code int) {
	if sess != nil {
		sess.SetExit(code)
		if err := sess.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "testability: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

func main() {
	var (
		v = specflags.Register(flag.CommandLine, "",
			specflags.Options{In: true, Profile: true, ScaleDefault: 0.1})
		scanned = flag.Bool("scan", false, "analyze the scan-mode model after TPI (pins applied)")
		top     = flag.Int("top", 12, "how many hardest nets to list")
		oflags  = obsflags.Register(flag.CommandLine)
	)
	flag.Parse()

	var serr error
	if sess, serr = oflags.Open(); serr != nil {
		fail(serr)
	}
	defer sess.Close()
	col := sess.Collector()

	load := col.Phase("load")
	sp, err := v.Spec("")
	if err != nil {
		fail(err)
	}
	c, err := sp.BuildCircuit()
	if err != nil {
		fail(err)
	}
	load.End()

	fixed := map[netlist.SignalID]logic.V{}
	if *scanned {
		insert := col.Phase("insert")
		d, err := sp.InsertScan(c)
		if err != nil {
			fail(err)
		}
		insert.End()
		c = d.C
		for k, v := range d.Assignments {
			fixed[k] = v
		}
		fmt.Printf("analyzing scan-mode model (%d pinned inputs)\n", len(fixed))
	}

	scoap := col.Phase("scoap")
	ta, mc, err := fsct.AnalyzeTestability(c, fixed)
	if err != nil {
		fail(err)
	}
	scoap.End()

	// Distribution of per-gate combined costs.
	const inf = int64(1) << 40
	buckets := []int64{4, 8, 16, 32, 64, 128, 256}
	counts := make([]int, len(buckets)+2) // +overflow +uncontrollable/unobservable
	gates := 0
	for id := netlist.SignalID(0); int(id) < len(mc.Signals); id++ {
		if !mc.IsGate(id) {
			continue
		}
		gates++
		cost := min64(ta.CC0[id], ta.CC1[id]) + ta.CO[id]
		if cost >= inf {
			counts[len(counts)-1]++
			continue
		}
		placed := false
		for i, b := range buckets {
			if cost <= b {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(buckets)]++
		}
	}
	st := c.Stat()
	fmt.Printf("circuit %s: %d gates, %d FFs (model: %d signals)\n",
		c.Name, st.Gates, st.FFs, len(mc.Signals))
	fmt.Println("testability cost distribution (SCOAP, min(CC0,CC1)+CO):")
	lo := int64(0)
	for i, b := range buckets {
		fmt.Printf("  %5d..%-5d %6d (%4.1f%%)\n", lo, b, counts[i], 100*float64(counts[i])/float64(gates))
		lo = b + 1
	}
	fmt.Printf("  > %-9d %6d (%4.1f%%)\n", buckets[len(buckets)-1],
		counts[len(buckets)], 100*float64(counts[len(buckets)])/float64(gates))
	fmt.Printf("  untestable   %6d (%4.1f%%)  (unreachable or pinned off)\n",
		counts[len(counts)-1], 100*float64(counts[len(counts)-1])/float64(gates))

	fmt.Printf("\nhardest %d nets:\n", *top)
	for _, id := range ta.Hardest(mc, *top) {
		fmt.Printf("  %-16s CC0=%-8s CC1=%-8s CO=%s\n", mc.NameOf(id),
			fmtCost(ta.CC0[id]), fmtCost(ta.CC1[id]), fmtCost(ta.CO[id]))
	}
	sess.RecordRun(c.Name, c.StructuralHash(), col.Snapshot(), map[string]float64{
		"gates":      float64(st.Gates),
		"ffs":        float64(st.FFs),
		"untestable": float64(counts[len(counts)-1]),
	})
	if oflags.Metrics {
		fmt.Print(fsct.FormatMetrics(col.Snapshot()))
	}
	exit(0)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func fmtCost(v int64) string {
	if v >= int64(1)<<40 {
		return "inf"
	}
	return fmt.Sprintf("%d", v)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "testability: %v\n", err)
	exit(1)
}
