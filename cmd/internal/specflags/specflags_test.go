package specflags

import (
	"flag"
	"fmt"
	"strings"
	"testing"

	"repro/internal/task"
)

// allFlags registers every optional flag, the widest surface a command
// can ask for.
var allFlags = Options{In: true, Profile: true, Chains: true, Workers: true, Eval: true, Cone: true}

// TestDefaultsMatchDaemon is the anti-drift contract: for every job
// kind, a CLI that parses zero flags must produce a spec that
// normalizes to the same run options as the daemon normalizing a
// zero-valued spec of that kind. Both sides read task.DefaultsFor, so
// a divergence means someone hard-coded a default again.
func TestDefaultsMatchDaemon(t *testing.T) {
	for _, kind := range task.Kinds() {
		fs := flag.NewFlagSet(kind, flag.ContinueOnError)
		v := Register(fs, kind, allFlags)
		if err := fs.Parse(nil); err != nil {
			t.Fatalf("%s: parse: %v", kind, err)
		}
		cli, err := v.Spec("s27")
		if err != nil {
			t.Fatalf("%s: Spec: %v", kind, err)
		}
		if err := cli.Normalize(); err != nil {
			t.Fatalf("%s: normalize CLI spec: %v", kind, err)
		}
		daemon := task.Spec{Kind: kind, Circuit: "s27"}
		if err := daemon.Normalize(); err != nil {
			t.Fatalf("%s: normalize daemon spec: %v", kind, err)
		}
		// Scale is deliberately exempt: the daemon's omitted Scale means
		// "full size" while faultsim/diagnose default their -scale flag
		// to a faster entry point (see task.Defaults).
		if cli.Seed != daemon.Seed {
			t.Errorf("%s: seed: CLI %d, daemon %d", kind, cli.Seed, daemon.Seed)
		}
		if cli.Chains != daemon.Chains {
			t.Errorf("%s: chains: CLI %d, daemon %d", kind, cli.Chains, daemon.Chains)
		}
		if cli.Workers != daemon.Workers {
			t.Errorf("%s: workers: CLI %d, daemon %d", kind, cli.Workers, daemon.Workers)
		}
		if cli.Eval != daemon.Eval {
			t.Errorf("%s: eval: CLI %q, daemon %q", kind, cli.Eval, daemon.Eval)
		}
		if cli.Cycles != daemon.Cycles {
			t.Errorf("%s: cycles: CLI %d, daemon %d", kind, cli.Cycles, daemon.Cycles)
		}
		if cli.ConeThreshold != daemon.ConeThreshold {
			t.Errorf("%s: conethr: CLI %d, daemon %d", kind, cli.ConeThreshold, daemon.ConeThreshold)
		}
	}
}

// TestFlagDefaultsComeFromTable asserts the rendered flag defaults are
// the table's values, so `-help` output is honest about what a zero
// flag means.
func TestFlagDefaultsComeFromTable(t *testing.T) {
	for _, kind := range task.Kinds() {
		fs := flag.NewFlagSet(kind, flag.ContinueOnError)
		Register(fs, kind, allFlags)
		d := task.DefaultsFor(kind)
		want := map[string]string{
			"scale":   fmt.Sprintf("%g", d.Scale),
			"seed":    fmt.Sprintf("%d", d.Seed),
			"chains":  fmt.Sprintf("%d", d.Chains),
			"workers": fmt.Sprintf("%d", d.Workers),
			"eval":    d.Eval,
			"conethr": fmt.Sprintf("%d", d.ConeThreshold),
		}
		for name, def := range want {
			f := fs.Lookup(name)
			if f == nil {
				t.Fatalf("%s: flag -%s not registered", kind, name)
			}
			if f.DefValue != def {
				t.Errorf("%s: -%s default %q, defaults table says %q", kind, name, f.DefValue, def)
			}
		}
	}
}

// TestScaleOverride checks the per-command -scale entry points
// (chainsim 0.05, testability 0.1) replace the table default.
func TestScaleOverride(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	Register(fs, task.KindScreen, Options{ScaleDefault: 0.05})
	if got := fs.Lookup("scale").DefValue; got != "0.05" {
		t.Errorf("scale default = %q, want 0.05", got)
	}
}

// TestSpecSources covers the circuit-source resolution order.
func TestSpecSources(t *testing.T) {
	v := &Values{Kind: task.KindScreen}
	if _, err := v.Spec(""); err == nil || !strings.Contains(err.Error(), "need -in or -profile") {
		t.Errorf("no source: err = %v, want need -in or -profile", err)
	}
	v.Profile = "s1423"
	sp, err := v.Spec("")
	if err != nil || sp.Circuit != "s1423" || sp.Bench != "" {
		t.Errorf("profile source: spec %+v, err %v", sp, err)
	}
	sp, err = v.Spec("s27")
	if err != nil || sp.Circuit != "s27" {
		t.Errorf("explicit circuit: spec %+v, err %v", sp, err)
	}
	v.In = "/nonexistent/specflags-test.bench"
	if _, err := v.Spec(""); err == nil {
		t.Error("missing -in file: want error")
	}
}
