// Package specflags is the shared flags -> task.Spec adapter for the
// batch CLIs. Every command that runs (or builds circuits for) a task
// registers its circuit-source and run-option flags here, so flag
// names, help text and — critically — defaults cannot drift between
// commands, and CLI defaults are the daemon's defaults by construction:
// both sides read task.DefaultsFor.
package specflags

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/task"
)

// Options selects which flags a command registers. -scale and -seed
// are always registered; everything else is opt-in so commands keep
// their historical surface (e.g. testability has no -workers by
// design, diagnose's screening backend is fixed).
type Options struct {
	// In registers -in (read a .bench file).
	In bool
	// Profile registers -profile with DefaultProfile as its default.
	Profile bool
	// DefaultProfile is the -profile default ("" = none; diagnose uses
	// "s3330", chainsim "s27").
	DefaultProfile string
	// Chains registers -chains.
	Chains bool
	// Workers registers -workers.
	Workers bool
	// Eval registers -eval.
	Eval bool
	// Cone registers -conethr.
	Cone bool
	// ScaleDefault overrides the defaults table's -scale default for
	// commands whose UX wants a different entry point (chainsim 0.05,
	// testability 0.1). Zero keeps the table value.
	ScaleDefault float64
}

// Values holds the parsed flag values for one command. Call Spec after
// flag.Parse to turn them into a task spec.
type Values struct {
	Kind    string
	In      string
	Profile string
	Scale   float64
	Seed    int64
	Chains  int
	Workers int
	Eval    string
	ConeThr int
}

// Register installs the selected flags on fs with defaults from
// task.DefaultsFor(kind) and returns the value holder.
func Register(fs *flag.FlagSet, kind string, opt Options) *Values {
	d := task.DefaultsFor(kind)
	v := &Values{Kind: kind, Eval: d.Eval}
	if opt.In {
		fs.StringVar(&v.In, "in", "", "input .bench file")
	}
	if opt.Profile {
		v.Profile = opt.DefaultProfile
		fs.StringVar(&v.Profile, "profile", opt.DefaultProfile,
			"generate this suite profile (or \"s27\")")
	}
	scale := d.Scale
	if opt.ScaleDefault != 0 {
		scale = opt.ScaleDefault
	}
	fs.Float64Var(&v.Scale, "scale", scale, "profile scale factor in (0,1]; smaller = faster")
	fs.Int64Var(&v.Seed, "seed", d.Seed, "generation / insertion / stimulus seed")
	if opt.Chains {
		fs.IntVar(&v.Chains, "chains", d.Chains, "scan chains (0 = size-based default)")
	}
	if opt.Workers {
		fs.IntVar(&v.Workers, "workers", d.Workers,
			"fault-axis worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	}
	if opt.Eval {
		fs.StringVar(&v.Eval, "eval", d.Eval,
			"evaluator backend: auto, compiled, packed, scalar, event, hybrid")
	}
	if opt.Cone {
		fs.IntVar(&v.ConeThr, "conethr", d.ConeThreshold,
			"hybrid backend: delta-simulation event budget per fault (0 = default)")
	}
	return v
}

// Spec assembles the task spec the parsed flags describe. A non-empty
// circuit argument names the circuit directly (fsctest's suite loop)
// and skips the source flags; otherwise -in is read into Spec.Bench
// (the spec stays self-contained and serializable) with the file path
// as the circuit name, falling back to -profile, or an error when the
// command registered source flags and got neither.
func (v *Values) Spec(circuit string) (task.Spec, error) {
	sp := task.Spec{
		Kind:          v.Kind,
		Circuit:       circuit,
		Scale:         v.Scale,
		Seed:          v.Seed,
		Chains:        v.Chains,
		Workers:       v.Workers,
		Eval:          v.Eval,
		ConeThreshold: v.ConeThr,
	}
	if circuit != "" {
		return sp, nil
	}
	switch {
	case v.In != "":
		data, err := os.ReadFile(v.In)
		if err != nil {
			return sp, err
		}
		sp.Circuit = v.In
		sp.Bench = string(data)
	case v.Profile != "":
		sp.Circuit = v.Profile
	default:
		return sp, fmt.Errorf("need -in or -profile")
	}
	return sp, nil
}
