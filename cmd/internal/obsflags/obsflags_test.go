package obsflags

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/task"
	"repro/internal/trace"
)

// open builds a Session from an isolated FlagSet parsed with args.
func open(t *testing.T, args ...string) *Session {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	s, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCloseTwiceNoRecorder pins the SIGINT double-close hazard: every
// CLI closes the session both from its exit helper and from a deferred
// call, usually with no recorder or sink attached at all. Both closes
// must be safe no-ops returning the same (nil) error.
func TestCloseTwiceNoRecorder(t *testing.T) {
	s := open(t)
	if s.Recorder() != nil {
		t.Fatal("zero-flag session must not attach a recorder")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCloseTwiceWithSinks: with a trace file configured, the second
// Close must not rewrite the file or fail — and must report the first
// Close's error state unchanged.
func TestCloseTwiceWithSinks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	s := open(t, "-tracefile", path)
	s.Collector().Phase("p").End()
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close after flush: %v", err)
	}
}

// TestCloseReportsTraceError: a Close that cannot write its sinks must
// say so — and keep saying so on the double-close path rather than
// reporting success the second time.
func TestCloseReportsTraceError(t *testing.T) {
	s := open(t, "-tracefile", filepath.Join(t.TempDir(), "missing-dir", "trace.json"))
	if err := s.Close(); err == nil {
		t.Fatal("Close must surface the tracefile create error")
	}
	if err := s.Close(); err == nil {
		t.Fatal("second Close must report the same failure, not success")
	}
}

func TestLedgerFlagActivatesCollector(t *testing.T) {
	s := open(t, "-ledger", filepath.Join(t.TempDir(), "runs.jsonl"))
	if col := s.Collector(); !col.Enabled() {
		t.Fatal("-ledger must yield an enabled collector (records carry metrics)")
	}
	var none Flags
	if none.Active() {
		t.Fatal("zero flags must stay inactive")
	}
}

// TestLedgerFlushOnClose: RecordRun queues records, Close completes and
// appends them exactly once (double Close must not duplicate), and the
// exit status set before Close lands in every record.
func TestLedgerFlushOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	s := open(t, "-ledger", path, "-metrics")
	col := s.Collector()
	col.Counter("screen.easy").Add(5)
	s.RecordRun("s27", 0xabc, col.Snapshot(), map[string]float64{"coverage": 98.5})
	s.RecordRun("s1423", 0xdef, col.Snapshot(), nil)
	s.SetExit(1)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	recs, err := ledger.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("ledger holds %d records, want 2 (double Close must not re-append)", len(recs))
	}
	r := recs[0]
	if r.Schema != ledger.Schema || r.Circuit != "s27" || r.Hash != ledger.HashString(0xabc) {
		t.Fatalf("record identity wrong: %+v", r)
	}
	if r.CLI == "" || r.Time.IsZero() || r.WallNS <= 0 {
		t.Fatalf("session fields not filled: %+v", r)
	}
	if r.Exit != 1 || recs[1].Exit != 1 {
		t.Fatalf("exit status not stamped: %+v", recs)
	}
	if r.Metrics["counters.screen.easy"] != 5 || r.Metrics["coverage"] != 98.5 {
		t.Fatalf("metrics/extras not flattened into the record: %v", r.Metrics)
	}
	if r.Flags["ledger"] != path || r.Flags["metrics"] != "true" {
		t.Fatalf("explicitly-set flags not recorded: %v", r.Flags)
	}
}

// TestLedgerBareRecordOnEmptyRun: a -ledger run that dies before any
// circuit completes still appends one circuit-less record — the SIGINT
// partial-run guarantee.
func TestLedgerBareRecordOnEmptyRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	s := open(t, "-ledger", path)
	s.SetExit(1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ledger.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Circuit != "" || recs[0].Exit != 1 {
		t.Fatalf("bare run record wrong: %+v", recs)
	}
}

// TestMemProfileWrittenOnClose: -memprofile must leave a parseable
// (non-empty, gzip-framed) heap profile after Close, must not count as
// instrumentation (Active stays false — a profile wants the
// uninstrumented allocation picture), and must survive double Close
// without rewriting the file.
func TestMemProfileWrittenOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pprof")
	s := open(t, "-memprofile", path)
	if s.flags.Active() {
		t.Fatal("-memprofile alone must not activate instrumentation")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatalf("heap profile missing gzip framing (%d bytes)", len(data))
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := os.Stat(path); err == nil {
		t.Fatal("second Close must not rewrite the heap profile")
	}
}

// TestMemProfileCreateError: an unwritable -memprofile path must
// surface from Close like the tracefile error does.
func TestMemProfileCreateError(t *testing.T) {
	s := open(t, "-memprofile", filepath.Join(t.TempDir(), "no-dir", "heap.pprof"))
	if err := s.Close(); err == nil {
		t.Fatal("Close must surface the memprofile create error")
	}
}

// TestRecordRunWithoutLedgerIsFree: commands call RecordRun
// unconditionally; without -ledger it must do nothing (and a nil
// snapshot must not panic).
func TestRecordRunWithoutLedgerIsFree(t *testing.T) {
	s := open(t)
	var nilSnap *obs.Metrics
	s.RecordRun("s27", 1, nilSnap, nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, "-ledger", filepath.Join(t.TempDir(), "l.jsonl"))
	s2.RecordRun("s27", 1, nil, nil) // no metrics at all: record survives
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ledger.Read(s2.flags.Ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Circuit != "s27" || recs[0].Metrics != nil {
		t.Fatalf("metric-less record wrong: %+v", recs)
	}
}

// TestSamePathExportersRejected pins satellite behavior: -tracefile and
// -otlpfile share events but not a format, so naming the same path must
// fail at Open rather than silently overwrite one export with the
// other.
func TestSamePathExportersRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-tracefile", path, "-otlpfile", dir + "/./out.json"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Open(); err == nil {
		t.Fatal("Open must reject -tracefile and -otlpfile naming the same path")
	}
	if !f.Active() {
		t.Fatal("-otlpfile must count as instrumentation")
	}
}

// TestOTLPFileWrittenOnClose: -otlpfile must leave a parseable
// OTLP/JSON span tree after Close whose resource attributes carry the
// run identity, including the circuit and structural hash captured by
// RecordRun even without -ledger, and the recorder's drop count.
func TestOTLPFileWrittenOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.json")
	s := open(t, "-otlpfile", path)
	if s.Recorder() == nil {
		t.Fatal("-otlpfile must attach a flight recorder")
	}
	s.Collector().Phase("faultsim.seq").End()
	s.RecordRun("s27", 0xabc, nil, nil)
	s.SetTraceAttr("eval", "table")
	var sp task.Spec
	s.StampTrace(&sp)
	if want := s.TraceContext().Traceparent(); sp.TraceParent != want {
		t.Fatalf("StampTrace wrote %q, want %q", sp.TraceParent, want)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	tr, err := trace.ReadOTLP(w)
	if err != nil {
		t.Fatalf("ReadOTLP: %v", err)
	}
	if tr.Ctx.Trace != s.TraceContext().Trace {
		t.Fatalf("exported trace %s, want session trace %s", tr.Ctx.Trace, s.TraceContext().Trace)
	}
	if len(tr.Spans) < 2 || tr.Spans[0].Kind != trace.SpanRoot {
		t.Fatalf("span tree wrong: %+v", tr.Spans)
	}
	attrs := map[string]string{}
	for _, a := range tr.Resource {
		attrs[a.Key] = a.Value
	}
	for _, want := range []struct{ k, v string }{
		{"circuit", "s27"}, {"structural_hash", "0000000000000abc"},
		{"eval", "table"}, {"journal.dropped_events", "0"},
	} {
		if attrs[want.k] != want.v {
			t.Errorf("resource %s = %q, want %q", want.k, attrs[want.k], want.v)
		}
	}
	if attrs["run_id"] == "" || attrs["cli"] == "" {
		t.Errorf("resource run identity missing: %v", attrs)
	}
}

// TestTraceparentEnvJoinsCallerTrace: a valid TRACEPARENT in the
// environment makes the session's root span a child of the caller's
// span; a malformed one roots a fresh trace instead of failing Open.
func TestTraceparentEnvJoinsCallerTrace(t *testing.T) {
	t.Setenv("TRACEPARENT", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	s := open(t)
	if got := s.TraceContext().Trace.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("session trace = %s, want the caller's", got)
	}
	tr := s.Trace()
	if got := tr.Parent.String(); got != "00f067aa0ba902b7" {
		t.Fatalf("root span parent = %s, want the caller's span", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	t.Setenv("TRACEPARENT", "not-a-traceparent")
	s2 := open(t)
	if s2.TraceContext().Trace.IsZero() || s2.TraceContext().Trace == s.TraceContext().Trace {
		t.Fatal("malformed TRACEPARENT must root a fresh trace")
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}
