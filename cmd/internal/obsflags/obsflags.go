// Package obsflags gives every CLI in this repository the same
// observability flag surface and lifecycle:
//
//	-metrics    instrument the run, emit a metrics snapshot
//	-trace      stream phase annotations to stderr
//	-tracefile  export the run's flight-recorder timeline as a Chrome
//	            trace-event JSON file (chrome://tracing, Perfetto)
//	-progress   live per-phase progress on stderr (TTY-aware)
//	-debug      /debug/pprof + /debug/vars HTTP server
//
// A command calls Register before flag.Parse, Open after it, hands
// Session.Collector() to whatever it runs, and calls Session.Close
// before every exit — including error and SIGINT paths, because
// os.Exit skips deferred calls and the trace file is written on Close.
package obsflags

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"

	"repro/internal/journal"
	"repro/internal/obs"
)

// Flags holds the shared observability flag values.
type Flags struct {
	Metrics   bool
	Trace     bool
	TraceFile string
	Progress  bool
	Debug     string
}

// Register installs the shared flags on fs (flag.CommandLine in the
// CLIs) and returns the value struct to read after parsing.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.BoolVar(&f.Metrics, "metrics", false, "instrument the run and report metrics")
	fs.BoolVar(&f.Trace, "trace", false, "stream phase trace annotations to stderr")
	fs.StringVar(&f.TraceFile, "tracefile", "", "write a Chrome trace-event timeline (chrome://tracing, Perfetto) to this `file`")
	fs.BoolVar(&f.Progress, "progress", false, "render live per-phase progress on stderr")
	fs.StringVar(&f.Debug, "debug", "", "serve /debug/pprof and /debug/vars on this `address` (e.g. localhost:6060)")
	return f
}

// Active reports whether any flag asks for instrumentation — commands
// use it to decide between the nil (free) collector and a real one.
func (f *Flags) Active() bool {
	return f.Metrics || f.Trace || f.TraceFile != "" || f.Progress || f.Debug != ""
}

// Session is the process-wide observability state behind the flags:
// one flight recorder shared by every collector the command creates
// (per-circuit collectors merge into one timeline), the progress
// renderer subscribed to it, and the debug server.
type Session struct {
	flags    *Flags
	recorder *journal.Recorder
	progress *journal.Progress
	server   *http.Server

	closeOnce sync.Once
	closeErr  error
}

// Open starts the session's sinks: the journal recorder (when
// -tracefile or -progress need the event stream), the progress
// renderer, and the debug server. The zero-flag session is valid and
// free.
func (f *Flags) Open() (*Session, error) {
	s := &Session{flags: f}
	if f.TraceFile != "" || f.Progress {
		s.EnsureRecorder()
	}
	if f.Progress {
		s.progress = journal.NewProgress(os.Stderr, stderrIsTTY())
		s.recorder.SetObserver(s.progress.Observe)
	}
	if f.Debug != "" {
		srv, err := obs.ServeDebug(f.Debug)
		if err != nil {
			return nil, err
		}
		s.server = srv
	}
	return s, nil
}

// EnsureRecorder attaches a flight recorder even when no flag asked
// for one (fsctest -why needs the event stream regardless of
// -tracefile), and returns it.
func (s *Session) EnsureRecorder() *journal.Recorder {
	if s.recorder == nil {
		s.recorder = journal.New(0)
	}
	return s.recorder
}

// Recorder returns the session's journal recorder; nil (a valid no-op
// sink) when no sink needed one.
func (s *Session) Recorder() *journal.Recorder { return s.recorder }

// Collector returns a fresh enabled collector wired to the session's
// sinks — stderr tracing per -trace, the shared journal — and
// publishes it for /debug/vars. It returns nil (the disabled
// collector) when no instrumentation was requested, so callers can
// pass the result straight into option structs.
func (s *Session) Collector() *obs.Collector {
	if !s.flags.Active() && s.recorder == nil {
		return nil
	}
	col := obs.New()
	if s.flags.Trace {
		col.SetTrace(os.Stderr)
	}
	col.SetJournal(s.recorder)
	obs.Publish(col)
	return col
}

// Close flushes the session's sinks: the live progress line is
// terminated and the journal is exported to -tracefile (also on
// interrupted runs — the partial timeline is exactly what a SIGINT
// investigation wants). Safe to call more than once; every exit path
// must reach it because os.Exit skips defers.
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		s.progress.Flush()
		if s.flags.TraceFile != "" && s.recorder != nil {
			s.closeErr = s.writeTrace()
		}
		if s.server != nil {
			_ = s.server.Close()
		}
	})
	return s.closeErr
}

func (s *Session) writeTrace() error {
	w, err := os.Create(s.flags.TraceFile)
	if err != nil {
		return fmt.Errorf("tracefile: %w", err)
	}
	err = journal.WriteTrace(w, s.recorder.Snapshot(), s.recorder.Dropped())
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("tracefile: %w", err)
	}
	return nil
}

// WriteTraceTo exports the current journal snapshot to w (tests).
func (s *Session) WriteTraceTo(w io.Writer) error {
	return journal.WriteTrace(w, s.recorder.Snapshot(), s.recorder.Dropped())
}

// stderrIsTTY reports whether stderr is a character device, selecting
// in-place progress rewriting over plain log lines.
func stderrIsTTY() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
