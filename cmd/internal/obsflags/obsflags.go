// Package obsflags gives every CLI in this repository the same
// observability flag surface and lifecycle:
//
//	-metrics     instrument the run, emit a metrics snapshot
//	-trace       stream phase annotations to stderr
//	-tracefile   export the run's flight-recorder timeline as a Chrome
//	             trace-event JSON file (chrome://tracing, Perfetto)
//	-otlpfile    export the same timeline as an OTLP/JSON span tree
//	             (OpenTelemetry collectors, fsctstats trace)
//	-progress    live per-phase progress on stderr (TTY-aware)
//	-debug       /debug/pprof + /debug/vars + /metrics HTTP server
//	-ledger      append the run's records to a JSONL run ledger
//	-memprofile  write a pprof heap profile on exit
//	-log         structured slog lines on stderr at a level
//	-logfile     append structured JSON log lines to a file
//
// A command calls Register before flag.Parse, Open after it, hands
// Session.Collector() to whatever it runs, and calls Session.Close
// before every exit — including error and SIGINT paths, because
// os.Exit skips deferred calls and both the trace file and the ledger
// records are written on Close. Commands report per-circuit results
// with RecordRun and their exit status with SetExit, so interrupted
// runs land in the ledger with whatever they completed.
//
// Every session also roots a distributed-trace context: a fresh
// 128-bit trace ID, or — when the TRACEPARENT environment variable
// carries a valid W3C traceparent — a child of the caller's span, so a
// CI script's trace threads through the CLIs it invokes. Commands
// stamp it into the specs they run with StampTrace; -otlpfile exports
// the assembled span tree on Close.
package obsflags

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/task"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Flags holds the shared observability flag values.
type Flags struct {
	Metrics    bool
	Trace      bool
	TraceFile  string
	OTLPFile   string
	Progress   bool
	Debug      string
	Ledger     string
	MemProfile string
	Log        string
	LogFile    string

	fs *flag.FlagSet // consulted at Open for the explicitly-set flags
}

// Register installs the shared flags on fs (flag.CommandLine in the
// CLIs) and returns the value struct to read after parsing.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{fs: fs}
	fs.BoolVar(&f.Metrics, "metrics", false, "instrument the run and report metrics")
	fs.BoolVar(&f.Trace, "trace", false, "stream phase trace annotations to stderr")
	fs.StringVar(&f.TraceFile, "tracefile", "", "export the run's timeline to this `file` as Chrome trace events (chrome://tracing, Perfetto); same events as -otlpfile, viewer-oriented form")
	fs.StringVar(&f.OTLPFile, "otlpfile", "", "export the run's timeline to this `file` as an OTLP/JSON span tree (OpenTelemetry collectors, fsctstats trace); same events as -tracefile, tooling-oriented form")
	fs.BoolVar(&f.Progress, "progress", false, "render live per-phase progress on stderr")
	fs.StringVar(&f.Debug, "debug", "", "serve /debug/pprof, /debug/vars and /metrics on this `address` (e.g. localhost:6060)")
	fs.StringVar(&f.Ledger, "ledger", "", "append this run's records to the JSONL run ledger at `file` (query with cmd/fsctstats)")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to this `file` on exit (SIGINT included)")
	fs.StringVar(&f.Log, "log", "", "emit structured log lines on stderr at this `level` (debug, info, warn, error)")
	fs.StringVar(&f.LogFile, "logfile", "", "append structured JSON log lines to this `file` (level from -log, default info)")
	return f
}

// Active reports whether any flag asks for instrumentation — commands
// use it to decide between the nil (free) collector and a real one.
// -ledger counts: its records carry the metrics snapshot.
func (f *Flags) Active() bool {
	return f.Metrics || f.Trace || f.TraceFile != "" || f.OTLPFile != "" ||
		f.Progress || f.Debug != "" || f.Ledger != ""
}

// setFlags collects the flags that were explicitly set on the command
// line, for the ledger record's provenance.
func (f *Flags) setFlags() map[string]string {
	if f.fs == nil {
		return nil
	}
	out := map[string]string{}
	f.fs.Visit(func(fl *flag.Flag) {
		out[fl.Name] = fl.Value.String()
	})
	if len(out) == 0 {
		return nil
	}
	return out
}

// Session is the process-wide observability state behind the flags:
// one flight recorder shared by every collector the command creates
// (per-circuit collectors merge into one timeline), the progress
// renderer subscribed to it, the debug server, and the pending ledger
// records flushed on Close.
type Session struct {
	flags    *Flags
	recorder *journal.Recorder
	progress *journal.Progress
	server   *http.Server

	logger  *slog.Logger
	runID   string
	logFile *os.File

	cli   string
	start time.Time

	// tctx is the run's root trace context (the CLI invocation's span);
	// tparent is the caller's span when TRACEPARENT carried one.
	tctx    trace.Context
	tparent trace.SpanID

	mu         sync.Mutex
	runs       []ledger.Record
	exit       int
	circuits   []string     // distinct circuits seen by RecordRun
	hash       uint64       // last nonzero structural hash
	traceAttrs []trace.Attr // extra OTLP resource attrs (SetTraceAttr)

	closeOnce sync.Once
	closeErr  error
}

// Open starts the session's sinks: the journal recorder (when
// -tracefile or -progress need the event stream), the progress
// renderer, and the debug server. The zero-flag session is valid and
// free.
func (f *Flags) Open() (*Session, error) {
	if f.TraceFile != "" && f.OTLPFile != "" &&
		filepath.Clean(f.TraceFile) == filepath.Clean(f.OTLPFile) {
		return nil, fmt.Errorf("-tracefile and -otlpfile name the same path %q: the exporters would overwrite each other (they share events, not a format)", f.TraceFile)
	}
	s := &Session{flags: f, start: time.Now(), cli: filepath.Base(os.Args[0])}
	// Root the run's trace. A valid TRACEPARENT in the environment makes
	// this invocation a child of the caller's span (CI scripts, make
	// targets); anything else — unset or malformed — roots a fresh trace,
	// the header being advisory by W3C convention.
	if pc, err := trace.Parse(os.Getenv("TRACEPARENT")); err == nil {
		s.tctx = trace.Context{Trace: pc.Trace, Span: trace.NewSpanID(), Flags: pc.Flags | trace.FlagSampled}
		s.tparent = pc.Span
	} else {
		s.tctx = trace.NewContext()
	}
	if err := s.openLogger(); err != nil {
		return nil, err
	}
	if f.TraceFile != "" || f.OTLPFile != "" || f.Progress {
		s.EnsureRecorder()
	}
	if f.Progress {
		s.progress = journal.NewProgress(os.Stderr, stderrIsTTY())
		s.recorder.SetObserver(s.progress.Observe)
	}
	if f.Debug != "" {
		srv, err := obs.ServeDebug(f.Debug)
		if err != nil {
			s.closeLogFile()
			return nil, err
		}
		s.server = srv
	}
	s.logger.Info("run started", slog.String("cli", s.cli))
	return s, nil
}

// openLogger builds the session's structured logger from -log (text on
// stderr) and -logfile (JSON appended to a file), stamps every line
// with a fresh run_id, and leaves the free discard logger when neither
// flag is set.
func (s *Session) openLogger() error {
	f := s.flags
	lvl := slog.LevelInfo
	if f.Log != "" {
		var err error
		if lvl, err = telemetry.ParseLevel(f.Log); err != nil {
			return err
		}
	}
	var handlers []slog.Handler
	if f.Log != "" {
		handlers = append(handlers, slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	}
	if f.LogFile != "" {
		w, err := os.OpenFile(f.LogFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("logfile: %w", err)
		}
		s.logFile = w
		handlers = append(handlers, slog.NewJSONHandler(w, &slog.HandlerOptions{Level: lvl}))
	}
	s.runID = telemetry.NewRunID()
	s.logger = slog.New(telemetry.Fanout(handlers...)).With(
		slog.String(telemetry.KeyRunID, s.runID),
		slog.String(telemetry.KeyTraceID, s.tctx.Trace.String()))
	return nil
}

// closeLogFile closes the -logfile sink, once.
func (s *Session) closeLogFile() {
	if s.logFile != nil {
		_ = s.logFile.Close()
		s.logFile = nil
	}
}

// Logger returns the session's structured logger (the discard logger
// when neither -log nor -logfile was set — log unconditionally). Every
// line carries the session's run_id.
func (s *Session) Logger() *slog.Logger { return s.logger }

// RunID returns the identifier correlating this process run's log
// lines.
func (s *Session) RunID() string { return s.runID }

// TraceContext returns the run's root trace context: the span that
// owns everything this process does. Its Traceparent() is what
// StampTrace writes into specs.
func (s *Session) TraceContext() trace.Context { return s.tctx }

// StampTrace stamps the session's trace context into sp, so the unit
// spans the executor emits — and, for a spec forwarded to fsctd, the
// daemon's job span — parent to this CLI invocation's root span. Call
// it on every spec the command runs; the field never affects results.
func (s *Session) StampTrace(sp *task.Spec) {
	sp.TraceParent = s.tctx.Traceparent()
}

// SetTraceAttr adds one resource attribute to the run's exported trace
// (the eval backend, say — facts the session cannot see from its own
// flags). Later values for the same key win at export.
func (s *Session) SetTraceAttr(key, value string) {
	s.mu.Lock()
	s.traceAttrs = append(s.traceAttrs, trace.Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Trace assembles the run's span tree from the flight recorder: the
// root span (this CLI invocation, parented to TRACEPARENT's span when
// one was inherited), one span per executed unit, and the phase,
// worker-pool and ATPG spans inside each. The resource attributes
// carry the run identity — run_id, cli, the circuits RecordRun saw,
// the last structural hash, any SetTraceAttr extras — plus the
// recorder's dropped-event count, so truncated traces self-describe.
func (s *Session) Trace() trace.Trace {
	rec := s.recorder
	var events []journal.Event
	var endNS, dropped int64
	originNS := s.start.UnixNano()
	if rec != nil {
		events = rec.Snapshot()
		endNS = rec.Elapsed().Nanoseconds()
		dropped = rec.Dropped()
		if o := rec.Origin(); !o.IsZero() {
			originNS = o.UnixNano()
		}
	}
	s.mu.Lock()
	circuits := append([]string(nil), s.circuits...)
	hash := s.hash
	extras := append([]trace.Attr(nil), s.traceAttrs...)
	s.mu.Unlock()
	res := []trace.Attr{
		{Key: "service.name", Value: journal.TraceProcessName},
		{Key: "run_id", Value: s.runID},
		{Key: "cli", Value: s.cli},
	}
	if len(circuits) > 0 {
		res = append(res, trace.Attr{Key: "circuit", Value: strings.Join(circuits, ",")})
	}
	if hash != 0 {
		res = append(res, trace.Attr{Key: "structural_hash", Value: fmt.Sprintf("%016x", hash)})
	}
	res = append(res, extras...)
	res = append(res, trace.Attr{Key: "journal.dropped_events", Value: fmt.Sprintf("%d", dropped)})
	return trace.Trace{
		Ctx: s.tctx, Parent: s.tparent,
		OriginNS: originNS,
		Resource: res,
		Spans:    trace.Assemble(s.tctx, s.tparent, s.cli, events, endNS),
	}
}

// writeOTLP exports the assembled span tree to -otlpfile.
func (s *Session) writeOTLP() error {
	if s.flags.OTLPFile == "" {
		return nil
	}
	w, err := os.Create(s.flags.OTLPFile)
	if err != nil {
		return fmt.Errorf("otlpfile: %w", err)
	}
	err = trace.WriteOTLP(w, s.Trace())
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("otlpfile: %w", err)
	}
	return nil
}

// TrackCtx installs a unit tracker for the run described by kind and
// circuit: unit lifecycle transitions land in the session log under
// correlated run_id/unit_id attributes, and — when the session has a
// flight recorder — journal events feed the tracker's per-unit progress
// heartbeat (chained in front of the progress renderer's observer, so
// -progress keeps working). The returned context carries the tracker
// into task.Execute; pass it to the run.
func (s *Session) TrackCtx(ctx context.Context, kind, circuit string) context.Context {
	tr := telemetry.NewRunTracker(telemetry.Info{
		RunID: s.runID, Kind: kind, Circuit: circuit,
		TraceID: s.tctx.Trace.String(),
	}, s.logger)
	if rec := s.recorder; rec != nil {
		if prev := s.progress; prev != nil {
			rec.SetObserver(func(e journal.Event) {
				prev.Observe(e)
				tr.Observe(e)
			})
		} else {
			rec.SetObserver(tr.Observe)
		}
	}
	return task.WithTracker(ctx, tr)
}

// EnsureRecorder attaches a flight recorder even when no flag asked
// for one (fsctest -why needs the event stream regardless of
// -tracefile), and returns it.
func (s *Session) EnsureRecorder() *journal.Recorder {
	if s.recorder == nil {
		s.recorder = journal.New(0)
	}
	return s.recorder
}

// Recorder returns the session's journal recorder; nil (a valid no-op
// sink) when no sink needed one.
func (s *Session) Recorder() *journal.Recorder { return s.recorder }

// Collector returns a fresh enabled collector wired to the session's
// sinks — stderr tracing per -trace, the shared journal — and
// publishes it for /debug/vars and /metrics. It returns nil (the
// disabled collector) when no instrumentation was requested, so
// callers can pass the result straight into option structs.
func (s *Session) Collector() *obs.Collector {
	if !s.flags.Active() && s.recorder == nil {
		return nil
	}
	col := obs.New()
	if s.flags.Trace {
		col.SetTrace(os.Stderr)
	}
	col.SetJournal(s.recorder)
	obs.Publish(col)
	return col
}

// RecordRun queues one ledger record for the circuit just processed:
// its name, structural hash (0 for none — the engine cache key, so
// runs over structurally identical circuits compare across machines),
// the metrics snapshot, and optional headline scalars ("coverage")
// merged into the flattened metric map. The circuit and hash also land
// in the exported trace's resource attributes (every exporter wants
// them, not just the ledger). Otherwise a no-op unless -ledger was
// set. The record is completed (timestamp, CLI, flags, exit status,
// wall time) and appended by Close.
func (s *Session) RecordRun(circuit string, hash uint64, m *obs.Metrics, extra map[string]float64) {
	s.mu.Lock()
	if circuit != "" && !slices.Contains(s.circuits, circuit) {
		s.circuits = append(s.circuits, circuit)
	}
	if hash != 0 {
		s.hash = hash
	}
	s.mu.Unlock()
	if s.flags.Ledger == "" {
		return
	}
	flat := ledger.FlattenMetrics(m)
	if flat == nil && len(extra) > 0 {
		flat = make(map[string]float64, len(extra))
	}
	for k, v := range extra {
		flat[k] = v
	}
	rec := ledger.Record{Circuit: circuit, Metrics: flat}
	if hash != 0 {
		rec.Hash = ledger.HashString(hash)
	}
	s.mu.Lock()
	s.runs = append(s.runs, rec)
	s.mu.Unlock()
}

// AppendRun writes one completed ledger record immediately instead of
// queueing it for Close. Long-lived daemons (cmd/fsctd) use it so each
// finished job is durable the moment it completes — a crashed daemon
// loses nothing already served — while short-lived CLIs keep the
// one-write-at-Close path of RecordRun. The record is completed the
// same way Close would (timestamp = now rather than process start,
// CLI, explicitly-set flags, per-record exit, wall = record's own
// duration as provided). No-op unless -ledger was set.
func (s *Session) AppendRun(rec ledger.Record, exit int, wall time.Duration) error {
	if s.flags.Ledger == "" {
		return nil
	}
	rec.Schema = ledger.Schema
	rec.Time = time.Now()
	rec.CLI = s.cli
	rec.Flags = s.flags.setFlags()
	rec.Exit = exit
	rec.WallNS = wall.Nanoseconds()
	return ledger.Append(s.flags.Ledger, rec)
}

// SetExit declares the status the process is about to exit with, for
// the ledger records Close flushes. Call it before Close on every exit
// path (the CLIs route both through their exit helper).
func (s *Session) SetExit(code int) {
	s.mu.Lock()
	s.exit = code
	s.mu.Unlock()
}

// Close flushes the session's sinks: the live progress line is
// terminated, the journal is exported to -tracefile and the assembled
// span tree to -otlpfile, and the pending
// run records are appended to -ledger (also on interrupted runs — the
// partial history is exactly what a SIGINT investigation wants). Safe
// to call more than once; every exit path must reach it because
// os.Exit skips defers.
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		s.progress.Flush()
		if s.flags.TraceFile != "" && s.recorder != nil {
			s.closeErr = s.writeTrace()
		}
		if err := s.writeOTLP(); err != nil && s.closeErr == nil {
			s.closeErr = err
		}
		if err := s.writeLedger(); err != nil && s.closeErr == nil {
			s.closeErr = err
		}
		if err := s.writeMemProfile(); err != nil && s.closeErr == nil {
			s.closeErr = err
		}
		if s.server != nil {
			_ = s.server.Close()
		}
		s.mu.Lock()
		exit := s.exit
		s.mu.Unlock()
		s.logger.Info("run finished",
			slog.Int("exit", exit), slog.Duration("wall", time.Since(s.start)))
		s.closeLogFile()
	})
	return s.closeErr
}

// writeMemProfile writes the heap profile to -memprofile. A GC first
// brings the profile up to date (heap profiles are recorded at GC
// points), so short runs do not export an empty profile.
func (s *Session) writeMemProfile() error {
	if s.flags.MemProfile == "" {
		return nil
	}
	w, err := os.Create(s.flags.MemProfile)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	runtime.GC()
	err = pprof.WriteHeapProfile(w)
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

func (s *Session) writeTrace() error {
	w, err := os.Create(s.flags.TraceFile)
	if err != nil {
		return fmt.Errorf("tracefile: %w", err)
	}
	err = journal.WriteTrace(w, s.recorder.Snapshot(), s.recorder.Dropped())
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("tracefile: %w", err)
	}
	return nil
}

// writeLedger completes the queued run records with the session-wide
// fields and appends them. A run that recorded no circuit still leaves
// one (circuit-less) record, so every -ledger invocation is in the
// history — including ones that failed before any circuit completed.
func (s *Session) writeLedger() error {
	if s.flags.Ledger == "" {
		return nil
	}
	s.mu.Lock()
	recs := s.runs
	if len(recs) == 0 {
		recs = []ledger.Record{{}}
	}
	exit := s.exit
	s.mu.Unlock()
	flags := s.flags.setFlags()
	wall := time.Since(s.start).Nanoseconds()
	for i := range recs {
		recs[i].Schema = ledger.Schema
		recs[i].Time = s.start
		recs[i].CLI = s.cli
		recs[i].Flags = flags
		recs[i].Exit = exit
		recs[i].WallNS = wall
	}
	return ledger.Append(s.flags.Ledger, recs...)
}

// WriteTraceTo exports the current journal snapshot to w (tests).
func (s *Session) WriteTraceTo(w io.Writer) error {
	return journal.WriteTrace(w, s.recorder.Snapshot(), s.recorder.Dropped())
}

// stderrIsTTY reports whether stderr is a character device, selecting
// in-place progress rewriting over plain log lines.
func stderrIsTTY() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
