// Command fsctd is the service daemon: it serves concurrent screening,
// ATPG, fault-simulation and diagnosis jobs over an HTTP/JSON API. A
// submitted job body is a task.Spec, and runners execute it through
// the same internal/task pipeline the batch CLIs (cmd/fsctest,
// cmd/faultsim, cmd/diagnose) use — so reports are byte-identical to
// the CLIs' for the same spec.
//
// Usage:
//
//	fsctd -addr localhost:8341
//	fsctd -addr localhost:8341 -runners 4 -queue 128 -cache-budget 256MiB
//	fsctd -addr localhost:8341 -ledger runs.jsonl -metrics
//
// Submit a job and follow it:
//
//	curl -s -X POST localhost:8341/api/v1/jobs \
//	    -d '{"kind":"flow","circuit":"s1423","scale":0.1}'
//	curl -s localhost:8341/api/v1/jobs/j000001
//	curl -N localhost:8341/api/v1/jobs/j000001/events
//	curl -s localhost:8341/api/v1/jobs/j000001/result
//
// Watch every job's unit-level progress live (or point `fsctstats
// watch` at the daemon for a terminal dashboard):
//
//	curl -s localhost:8341/api/v1/live
//	curl -N localhost:8341/api/v1/live/events
//
// A straggler watchdog flags any running work-unit that makes no
// progress for the -stall threshold (default 30s); stalled units
// surface on /api/v1/live, in /metrics and as warning logs. -log and
// -logfile emit structured request and job-lifecycle logs correlated by
// run_id/job_id/unit_id.
//
// See SERVICE.md at the repository root for the operator's handbook:
// every endpoint, the SSE stream format, queue/priority semantics and
// cache-budget tuning.
//
// The shared observability flags apply to the daemon process itself:
// -ledger makes every finished job append one run record immediately
// (the /api/v1/history endpoint then serves that file), and /metrics
// on -addr exposes the server counters in the OpenMetrics format
// (-debug serves the usual pprof endpoints on a second address).
//
// SIGINT/SIGTERM shut down gracefully: the listener stops accepting,
// running jobs are canceled cooperatively (their partial records land
// in the ledger), and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/cmd/internal/obsflags"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// sess is the observability session; exit routes every termination
// through its Close (os.Exit skips defers).
var sess *obsflags.Session

func exit(code int) {
	if sess != nil {
		sess.SetExit(code)
		if err := sess.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "fsctd: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

func main() {
	var (
		addr         = flag.String("addr", "localhost:8341", "HTTP listen address")
		queueLimit   = flag.Int("queue", serve.DefaultQueueLimit, "max queued (not yet running) jobs before submissions get 429")
		runners      = flag.Int("runners", 0, "concurrent job executors (0 = GOMAXPROCS capped at 4)")
		cacheBudget  = flag.String("cache-budget", "0", "engine artifact cache byte budget, e.g. 256MiB (0 = unbounded)")
		cacheEntries = flag.Int("cache-entries", 0, "engine artifact cache entry bound (0 = default)")
		stall        = flag.Duration("stall", telemetry.DefaultStallThreshold, "flag a running unit as stalled after this much `silence` (negative disables the watchdog)")
		oflags       = obsflags.Register(flag.CommandLine)
	)
	flag.Parse()

	var err error
	if sess, err = oflags.Open(); err != nil {
		fail(err)
	}
	defer sess.Close()

	budget, err := serve.ParseByteSize(*cacheBudget)
	if err != nil {
		fail(fmt.Errorf("-cache-budget: %w", err))
	}

	srv := serve.New(serve.Config{
		QueueLimit:     *queueLimit,
		Runners:        *runners,
		CacheBudget:    budget,
		CacheEntries:   *cacheEntries,
		Ledger:         sess,
		LedgerPath:     oflags.Ledger,
		StallThreshold: *stall,
		Logger:         sess.Logger(),
		RunID:          sess.RunID(),
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("fsctd: serving on http://%s (queue %d, budget %s)\n", *addr, *queueLimit, *cacheBudget)

	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, then cancel jobs. A second
		// deadline bounds how long draining connections may linger.
		fmt.Println("fsctd: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = httpSrv.Shutdown(shCtx)
		cancel()
		srv.Close()
		exit(0)
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			srv.Close()
			fail(err)
		}
	}
	exit(0)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "fsctd: %v\n", err)
	exit(1)
}
