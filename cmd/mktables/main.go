// Command mktables rebuilds the EXPERIMENTS.md tables from one or more
// `fsctest -v` logs: it parses the per-circuit report blocks and prints
// Tables 1-3 with totals and the headline undetected percentages.
//
// Usage:
//
//	mktables full_run.txt big3_run.txt
//	mktables -metrics full_run.txt
//
// The observability flags are the shared surface (see
// cmd/internal/obsflags). The tables stay on stdout; -metrics prints
// the parse/render phase timings to stderr, -trace streams phase
// annotations, -tracefile exports the timeline as a Chrome trace-event
// file, -progress renders live progress, -debug addr serves
// /debug/pprof and /debug/vars.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"regexp"
	"strconv"

	"repro"
	"repro/cmd/internal/obsflags"
)

type row struct {
	name                       string
	gates, ffs, chains, faults int
	easy, hard                 int
	scpu                       string
	vec, s2d, s2u, s2x         int
	s2cpu                      string
	circ                       string
	s3d, s3u, s3x              int
	s3cpu                      string
}

var (
	reCirc = regexp.MustCompile(`^circuit (\S+): (\d+) gates, (\d+) FFs, (\d+) chains, (\d+) faults`)
	reScr  = regexp.MustCompile(`screening: easy=(\d+) .* hard=(\d+) .*\[(.*)\]`)
	reS2   = regexp.MustCompile(`step 2: (\d+) vectors; det=(\d+) undetectable=(\d+) undetected=(\d+)\s+\[(.*)\]`)
	reS3   = regexp.MustCompile(`step 3: (\d+)\+(\d+) C/O circuits; det=(\d+) undetectable=(\d+) undetected=(\d+)\s+\[(.*)\]`)
)

func atoi(s string) int { n, _ := strconv.Atoi(s); return n }

// sess is the observability session; every exit goes through exit so
// Close runs (os.Exit skips defers and -tracefile is written on Close).
var sess *obsflags.Session

func exit(code int) {
	if sess != nil {
		sess.SetExit(code)
		if err := sess.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "mktables: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

func main() {
	oflags := obsflags.Register(flag.CommandLine)
	flag.Parse()

	var err error
	if sess, err = oflags.Open(); err != nil {
		fmt.Fprintf(os.Stderr, "mktables: %v\n", err)
		exit(1)
	}
	defer sess.Close()
	col := sess.Collector()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	parse := col.Phase("parse")
	var rows []*row
	var cur *row
	for _, f := range flag.Args() {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "mktables: interrupted")
			exit(1)
		}
		fh, err := os.Open(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mktables: %v\n", err)
			exit(1)
		}
		sc := bufio.NewScanner(fh)
		for sc.Scan() {
			line := sc.Text()
			if m := reCirc.FindStringSubmatch(line); m != nil {
				cur = &row{name: m[1], gates: atoi(m[2]), ffs: atoi(m[3]), chains: atoi(m[4]), faults: atoi(m[5])}
				rows = append(rows, cur)
			} else if cur == nil {
				continue
			} else if m := reScr.FindStringSubmatch(line); m != nil {
				cur.easy, cur.hard, cur.scpu = atoi(m[1]), atoi(m[2]), m[3]
			} else if m := reS2.FindStringSubmatch(line); m != nil {
				cur.vec, cur.s2d, cur.s2u, cur.s2x, cur.s2cpu = atoi(m[1]), atoi(m[2]), atoi(m[3]), atoi(m[4]), m[5]
			} else if m := reS3.FindStringSubmatch(line); m != nil {
				cur.circ = m[1] + "+" + m[2]
				cur.s3d, cur.s3u, cur.s3x, cur.s3cpu = atoi(m[3]), atoi(m[4]), atoi(m[5]), m[6]
			}
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "mktables: %s: %v\n", f, err)
			exit(1)
		}
		fh.Close()
	}
	parse.End()
	col.Counter("mktables.rows").Add(int64(len(rows)))

	render := col.Phase("render")
	tg, tf, tfl, tc, te, th := 0, 0, 0, 0, 0, 0
	var a, b, cx, d2, e2, f2, tv int
	fmt.Printf("TABLE1\n%-10s %8s %6s %8s %7s\n", "name", "#gates", "#FFs", "#faults", "#chains")
	for _, r := range rows {
		fmt.Printf("%-10s %8d %6d %8d %7d\n", r.name, r.gates, r.ffs, r.faults, r.chains)
		tg += r.gates
		tf += r.ffs
		tfl += r.faults
		tc += r.chains
	}
	fmt.Printf("%-10s %8d %6d %8d %7d\n", "total", tg, tf, tfl, tc)
	fmt.Printf("\nTABLE2\n%-10s %8s %7s %8s %7s %12s\n", "name", "#easy", "(%)", "#hard", "(%)", "CPU")
	for _, r := range rows {
		fmt.Printf("%-10s %8d %6.1f%% %8d %6.1f%% %12s\n", r.name, r.easy,
			100*float64(r.easy)/float64(r.faults), r.hard, 100*float64(r.hard)/float64(r.faults), r.scpu)
		te += r.easy
		th += r.hard
	}
	fmt.Printf("%-10s %8d %6.1f%% %8d %6.1f%%\n", "total", te,
		100*float64(te)/float64(tfl), th, 100*float64(th)/float64(tfl))
	fmt.Printf("\nTABLE3\n%-10s | %5s %6s %8s %7s %10s | %6s | %6s %8s %7s %10s\n",
		"name", "#vec", "det", "undetbl", "undet", "CPU", "#circ", "det", "undetbl", "undet", "CPU")
	for _, r := range rows {
		fmt.Printf("%-10s | %5d %6d %8d %7d %10s | %6s | %6d %8d %7d %10s\n",
			r.name, r.vec, r.s2d, r.s2u, r.s2x, r.s2cpu, r.circ, r.s3d, r.s3u, r.s3x, r.s3cpu)
		a += r.s2d
		b += r.s2u
		cx += r.s2x
		d2 += r.s3d
		e2 += r.s3u
		f2 += r.s3x
		tv += r.vec
	}
	fmt.Printf("%-10s | %5d %6d %8d %7d %10s | %6s | %6d %8d %7d\n", "total", tv, a, b, cx, "", "", d2, e2, f2)
	und := f2
	fmt.Printf("\nHeadline: undetected = %d = %.4f%% of all faults = %.4f%% of chain-affecting faults\n",
		und, 100*float64(und)/float64(tfl), 100*float64(und)/float64(te+th))
	fmt.Printf("(paper: 0.006%% of all faults, 0.022%% of chain-affecting faults)\n")
	render.End()
	// No circuit (the input is parsed logs), so the ledger record is
	// keyed by CLI alone.
	sess.RecordRun("", 0, col.Snapshot(), map[string]float64{"rows": float64(len(rows))})
	if oflags.Metrics {
		// stderr: stdout is the tables artifact pasted into EXPERIMENTS.md.
		fmt.Fprint(os.Stderr, fsct.FormatMetrics(col.Snapshot()))
	}
	exit(0)
}
