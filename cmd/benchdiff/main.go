// Command benchdiff compares two benchmark JSON files (BENCH_*.json,
// written by the FSCT_EMIT_BENCH test emitters) and fails when the
// candidate regresses past per-metric thresholds. CI runs it warn-only
// against the committed baselines so drift is visible on every PR
// without flaking the build on machine noise; run it strict locally
// when hunting a regression.
//
// Usage:
//
//	benchdiff [-warn] [-v] [-ns 0.25] [-bytes 0.10] [-allocs 0.05] old.json new.json
//
// Metric leaves are matched by their flattened JSON path (see
// internal/metriccmp, which also powers the cross-run ledger gate in
// cmd/fsctstats); ns_per_op, bytes_per_op and allocs_per_op are
// compared against their own thresholds (a relative allowed increase),
// every other number is ignored. A metric present on only one side is
// reported but never fails the diff. Exit status: 0 clean (or -warn),
// 1 regression, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/metriccmp"
)

func main() {
	var (
		warn    = flag.Bool("warn", false, "report regressions but exit 0 (CI advisory mode)")
		verbose = flag.Bool("v", false, "print every compared metric, not just regressions")
		ns      = flag.Float64("ns", metriccmp.BenchThresholds["ns_per_op"], "allowed relative ns_per_op increase")
		bytesT  = flag.Float64("bytes", metriccmp.BenchThresholds["bytes_per_op"], "allowed relative bytes_per_op increase")
		allocs  = flag.Float64("allocs", metriccmp.BenchThresholds["allocs_per_op"], "allowed relative allocs_per_op increase")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] old.json new.json")
		os.Exit(2)
	}
	oldDoc, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	newDoc, err := os.ReadFile(flag.Arg(1))
	if err != nil {
		fail(err)
	}
	res, err := metriccmp.Diff(oldDoc, newDoc, map[string]float64{
		"ns_per_op": *ns, "bytes_per_op": *bytesT, "allocs_per_op": *allocs,
	})
	if err != nil {
		fail(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "benchdiff: %s -> %s\n", flag.Arg(0), flag.Arg(1))
	regressed := metriccmp.Report(&b, res, *verbose)
	fmt.Print(b.String())
	if regressed > 0 {
		if *warn {
			fmt.Println("(warn mode: regressions reported, exiting 0)")
			return
		}
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(2)
}
