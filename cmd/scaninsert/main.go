// Command scaninsert runs test point insertion on a circuit and reports
// the functional scan design: chain composition, functional versus
// inserted links, test points, and the scan-mode input assignments. It
// can also emit the modified circuit as a .bench file.
//
// Usage:
//
//	scaninsert -in circuit.bench [-chains 2] [-seed 1] [-out scan.bench] [-detail]
//	scaninsert -profile s5378 [-scale 0.1] ...
//	scaninsert -profile s5378 -scale 0.1 -screen -metrics -tracefile screen.json
//
// The observability flags are the shared surface (see
// cmd/internal/obsflags): -metrics appends a metrics summary after
// -screen, -trace streams phase annotations to stderr, -tracefile
// exports the flight-recorder timeline as a Chrome trace-event file,
// -progress renders live progress, -debug addr serves /debug/pprof and
// /debug/vars.
//
// SIGINT cancels -screen cooperatively; the process exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro"
	"repro/cmd/internal/obsflags"
	"repro/cmd/internal/specflags"
)

// sess is the observability session; every exit goes through exit so
// Close runs (os.Exit skips defers and -tracefile is written on Close).
var sess *obsflags.Session

func exit(code int) {
	if sess != nil {
		sess.SetExit(code)
		if err := sess.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "scaninsert: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

func main() {
	var (
		v = specflags.Register(flag.CommandLine, fsct.TaskScreen,
			specflags.Options{In: true, Profile: true, Chains: true, Workers: true, Eval: true})
		out    = flag.String("out", "", "write the scan-mode circuit to this .bench file")
		detail = flag.Bool("detail", false, "print every segment")
		screen = flag.Bool("screen", false, "also screen the collapsed fault list (easy/hard split)")
		oflags = obsflags.Register(flag.CommandLine)
	)
	flag.Parse()

	var serr error
	if sess, serr = oflags.Open(); serr != nil {
		fail(serr)
	}
	defer sess.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sp, err := v.Spec("")
	if err != nil {
		fail(err)
	}
	sess.StampTrace(&sp)
	c, err := sp.BuildCircuit()
	if err != nil {
		fail(err)
	}
	d, err := sp.InsertScan(c)
	if err != nil {
		fail(err)
	}

	st := d.C.Stat()
	ost := c.Stat()
	functional, inserted := d.LinkStats()
	fmt.Printf("circuit %s: %d gates, %d FFs -> scan-mode: %d gates (+%d)\n",
		c.Name, ost.Gates, ost.FFs, st.Gates, st.Gates-ost.Gates)
	fmt.Printf("chains: %d (longest %d)\n", len(d.Chains), d.MaxChainLen())
	fmt.Printf("links: %d functional, %d inserted (%.1f%% functional)\n",
		functional, inserted, 100*float64(functional)/float64(functional+inserted))
	fmt.Printf("test points: %d\n", len(d.TestPoints))
	assigned := 0
	for range d.Assignments {
		assigned++
	}
	fmt.Printf("scan-mode PI assignments: %d (incl. scan_mode=1)\n", assigned)
	// Conventional MUX-scan cost for comparison: 3 gates per flip-flop.
	convCost := 3 * ost.FFs
	ourCost := st.Gates - ost.Gates
	fmt.Printf("inserted-gate cost: %d vs %d for full MUX-scan (%.1f%%)\n",
		ourCost, convCost, 100*float64(ourCost)/float64(convCost))

	col := sess.Collector()
	extras := map[string]float64{
		"links.functional": float64(functional),
		"links.inserted":   float64(inserted),
		"test_points":      float64(len(d.TestPoints)),
	}
	if *screen {
		// The screen rides the canonical task pipeline (the design it
		// rebuilds is deterministic, so it matches d exactly); only the
		// report line here is scaninsert's own composition-flavored one.
		res, rerr := fsct.RunTask(sess.TrackCtx(ctx, sp.Kind, sp.Circuit), sp, nil, col)
		if rerr != nil {
			fail(rerr)
		}
		fmt.Printf("screening: %d faults, %d easy, %d hard (%.1f%% affect the chain)\n",
			res.Faults, res.Easy, res.Hard, 100*float64(res.Easy+res.Hard)/float64(res.Faults))
		extras["faults"] = float64(res.Faults)
		extras["screen.easy"] = float64(res.Easy)
		extras["screen.hard"] = float64(res.Hard)
		if oflags.Metrics {
			fmt.Print(fsct.FormatMetrics(col.Snapshot()))
		}
	}
	sess.RecordRun(d.C.Name, d.C.StructuralHash(), col.Snapshot(), extras)

	if *detail {
		for ci := range d.Chains {
			ch := &d.Chains[ci]
			fmt.Printf("\nchain %d (scan-in %s):\n", ch.ID, d.C.NameOf(ch.ScanIn))
			for si := range ch.Segment {
				seg := &ch.Segment[si]
				inv := ""
				if seg.Invert {
					inv = " (inverting)"
				}
				fmt.Printf("  %3d -> %-12s %-10s %d gates, %d sides%s\n",
					si, d.C.NameOf(seg.To), seg.Kind, len(seg.Path), len(seg.Sides), inv)
			}
		}
		fmt.Println("\nassignments:")
		for _, in := range d.C.Inputs {
			if v, ok := d.Assignments[in]; ok {
				fmt.Printf("  %s = %v\n", d.C.NameOf(in), v)
			}
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := fsct.WriteBench(f, d.C); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Printf("\nscan-mode circuit written to %s\n", *out)
	}
	exit(0)
}

func fail(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "scaninsert: interrupted")
	} else {
		fmt.Fprintf(os.Stderr, "scaninsert: %v\n", err)
	}
	exit(1)
}
