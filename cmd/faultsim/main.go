// Command faultsim is a standalone sequential fault simulator: it loads
// a circuit (.bench), a test sequence (file, or generated), and reports
// stuck-at fault coverage with an optional detection profile.
//
// Usage:
//
//	faultsim -in circuit.bench -seq tests.txt
//	faultsim -profile s9234 -scale 0.1 -random 2000 -profileplot
//	faultsim -profile s5378 -scale 0.1 -random 500 -metrics [-trace]
//	faultsim -profile s1423 -random 500 -eval packed
//	faultsim -profile s9234 -random 1000 -tracefile run.json -progress
//
// The flags assemble a task spec (see internal/task and
// cmd/internal/specflags) and the run is task.Run — exactly what an
// fsctd faultsim job executes, so the report is byte-identical to the
// daemon's for the same spec.
//
// The observability flags are the shared surface (see
// cmd/internal/obsflags): -metrics prints a metrics summary, -trace
// streams phase annotations to stderr, -tracefile exports the
// flight-recorder timeline as a Chrome trace-event file, -progress
// renders live progress on stderr, and -debug addr serves /debug/pprof
// and /debug/vars.
//
// SIGINT cancels the run at the next fault batch; the partial coverage
// is printed (and the partial timeline exported) and the process exits
// non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"

	"repro"
	"repro/cmd/internal/obsflags"
	"repro/cmd/internal/specflags"
	"repro/internal/faultsim"
)

// sess is the observability session; exit routes every termination
// through its Close so -tracefile is written even on failure paths
// (os.Exit skips defers).
var sess *obsflags.Session

func exit(code int) {
	if sess != nil {
		sess.SetExit(code)
		if err := sess.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "faultsim: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

func main() {
	var (
		v = specflags.Register(flag.CommandLine, fsct.TaskFaultSim,
			specflags.Options{In: true, Profile: true, Workers: true, Eval: true, Cone: true})
		seqFile     = flag.String("seq", "", "test sequence file (see internal/faultsim format)")
		random      = flag.Int("random", 0, "generate this many random cycles instead of -seq")
		uncollapsed = flag.Bool("uncollapsed", false, "use the full fault list (no equivalence collapsing)")
		profilePlot = flag.Bool("profileplot", false, "print the cumulative detection profile")
		emit        = flag.String("emit", "", "write the stimulus used to this file")
		mapEval     = flag.Bool("mapeval", false, "deprecated: same as -eval packed")
		oflags      = obsflags.Register(flag.CommandLine)
	)
	flag.Parse()

	var err error
	if sess, err = oflags.Open(); err != nil {
		fail(err)
	}
	defer sess.Close()

	sp, err := v.Spec("")
	if err != nil {
		fail(err)
	}
	sess.StampTrace(&sp)
	sp.Uncollapsed = *uncollapsed
	if *mapEval {
		sp.Eval = "packed"
	}
	switch {
	case *seqFile != "":
		data, ferr := os.ReadFile(*seqFile)
		if ferr != nil {
			fail(ferr)
		}
		sp.Sequence = string(data)
	case *random > 0:
		sp.Cycles = *random
	default:
		fail(fmt.Errorf("need -seq or -random"))
	}
	if err := sp.Normalize(); err != nil {
		fail(err)
	}

	// SIGINT cancels the simulation at the next fault batch; the partial
	// coverage over the batches that completed is still printed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *emit != "" {
		c, cerr := sp.BuildCircuit()
		if cerr != nil {
			fail(cerr)
		}
		seq, serr := sp.Stimulus(c)
		if serr != nil {
			fail(serr)
		}
		f, ferr := os.Create(*emit)
		if ferr != nil {
			fail(ferr)
		}
		if err := faultsim.WriteSequence(f, c, seq); err != nil {
			fail(err)
		}
		f.Close()
	}

	col := sess.Collector()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	res, rerr := fsct.RunTask(sess.TrackCtx(ctx, sp.Kind, sp.Circuit), sp, nil, col)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	interrupted := errors.Is(rerr, context.Canceled)
	if rerr != nil && !interrupted {
		fail(rerr)
	}
	fmt.Print(res.Output)
	extras := make(map[string]float64, len(res.Extras)+2)
	for k, val := range res.Extras {
		extras[k] = val
	}
	// Allocation trend series for fsctstats: mallocs/bytes of the
	// simulation proper, so an allocation regression in an evaluator
	// shows up across ledgered runs without rerunning benchmarks.
	extras["sim_mallocs"] = float64(msAfter.Mallocs - msBefore.Mallocs)
	extras["sim_alloc_bytes"] = float64(msAfter.TotalAlloc - msBefore.TotalAlloc)
	sess.RecordRun(res.Circuit, res.Hash, col.Snapshot(), extras)
	if oflags.Metrics {
		fmt.Print(fsct.FormatMetrics(col.Snapshot()))
	}

	if *profilePlot {
		step := res.Cycles / 20
		if step < 1 {
			step = 1
		}
		var bounds []int
		for b := 0; b <= res.Cycles; b += step {
			bounds = append(bounds, b)
		}
		prof := res.SimResult().Profile(bounds)
		for i, b := range bounds {
			bar := 0
			if res.Detected > 0 {
				bar = prof[i] * 50 / res.Detected
			}
			fmt.Printf("%7d cyc |%-50s| %d\n", b, bars(bar), prof[i])
		}
	}
	if interrupted {
		exit(1)
	}
	exit(0)
}

func bars(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "faultsim: %v\n", err)
	exit(1)
}
