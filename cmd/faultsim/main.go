// Command faultsim is a standalone sequential fault simulator: it loads
// a circuit (.bench), a test sequence (file, or generated), and reports
// stuck-at fault coverage with an optional detection profile.
//
// Usage:
//
//	faultsim -in circuit.bench -seq tests.txt
//	faultsim -profile s9234 -scale 0.1 -random 2000 -profileplot
//	faultsim -profile s5378 -scale 0.1 -random 500 -metrics [-trace]
//	faultsim -profile s1423 -random 500 -eval packed
//	faultsim -profile s9234 -random 1000 -tracefile run.json -progress
//
// The observability flags are the shared surface (see
// cmd/internal/obsflags): -metrics prints a metrics summary, -trace
// streams phase annotations to stderr, -tracefile exports the
// flight-recorder timeline as a Chrome trace-event file, -progress
// renders live progress on stderr, and -debug addr serves /debug/pprof
// and /debug/vars.
//
// SIGINT cancels the run at the next fault batch; the partial coverage
// is printed (and the partial timeline exported) and the process exits
// non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"

	"repro"
	"repro/cmd/internal/obsflags"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/logic"
)

// sess is the observability session; exit routes every termination
// through its Close so -tracefile is written even on failure paths
// (os.Exit skips defers).
var sess *obsflags.Session

func exit(code int) {
	if sess != nil {
		sess.SetExit(code)
		if err := sess.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "faultsim: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

func main() {
	var (
		in          = flag.String("in", "", "input .bench file")
		profile     = flag.String("profile", "", "generate this suite profile (or \"s27\")")
		scale       = flag.Float64("scale", 0.1, "profile scale factor")
		seed        = flag.Int64("seed", 1, "generation / stimulus seed")
		seqFile     = flag.String("seq", "", "test sequence file (see internal/faultsim format)")
		random      = flag.Int("random", 0, "generate this many random cycles instead of -seq")
		uncollapsed = flag.Bool("uncollapsed", false, "use the full fault list (no equivalence collapsing)")
		profilePlot = flag.Bool("profileplot", false, "print the cumulative detection profile")
		emit        = flag.String("emit", "", "write the stimulus used to this file")
		workers     = flag.Int("workers", 0, "fault-axis worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		eval        = flag.String("eval", "auto", "evaluator backend: auto, compiled, packed, scalar, event, hybrid")
		coneThr     = flag.Int("conethr", 0, "hybrid backend: delta-simulation event budget per fault (0 = default)")
		mapEval     = flag.Bool("mapeval", false, "deprecated: same as -eval packed")
		oflags      = obsflags.Register(flag.CommandLine)
	)
	flag.Parse()

	var err error
	if sess, err = oflags.Open(); err != nil {
		fail(err)
	}
	defer sess.Close()

	backend, err := fsct.ParseEvalBackend(*eval)
	if err != nil {
		fail(err)
	}

	// SIGINT cancels the simulation at the next fault batch; the partial
	// coverage over the batches that completed is still printed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var c *fsct.Circuit
	switch {
	case *in != "":
		f, ferr := os.Open(*in)
		if ferr != nil {
			fail(ferr)
		}
		c, err = fsct.ParseBench(f, *in)
		f.Close()
	case *profile == "s27":
		c = fsct.S27()
	case *profile != "":
		p, perr := fsct.ProfileByName(*profile)
		if perr != nil {
			fail(perr)
		}
		if *scale > 0 && *scale < 1 {
			p = p.Scale(*scale)
		}
		c = fsct.GenerateCircuit(p, *seed)
	default:
		fail(fmt.Errorf("need -in or -profile"))
	}
	if err != nil {
		fail(err)
	}

	var seq faultsim.Sequence
	switch {
	case *seqFile != "":
		f, ferr := os.Open(*seqFile)
		if ferr != nil {
			fail(ferr)
		}
		seq, err = faultsim.ReadSequence(f, c)
		f.Close()
		if err != nil {
			fail(err)
		}
	case *random > 0:
		rng := uint64(*seed)*2862933555777941757 + 3037000493
		next := func() logic.V {
			rng = rng*6364136223846793005 + 1442695040888963407
			return logic.V((rng >> 33) & 1)
		}
		seq = make(faultsim.Sequence, *random)
		for t := range seq {
			pi := make([]logic.V, len(c.Inputs))
			for i := range pi {
				pi[i] = next()
			}
			seq[t] = pi
		}
	default:
		fail(fmt.Errorf("need -seq or -random"))
	}

	if *emit != "" {
		f, ferr := os.Create(*emit)
		if ferr != nil {
			fail(ferr)
		}
		if err := faultsim.WriteSequence(f, c, seq); err != nil {
			fail(err)
		}
		f.Close()
	}

	var faults []fault.Fault
	if *uncollapsed {
		faults = fault.All(c)
	} else {
		faults = fault.Collapsed(c)
	}
	st := c.Stat()
	fmt.Printf("circuit %s: %d gates, %d FFs; %d faults; %d cycles\n",
		c.Name, st.Gates, st.FFs, len(faults), len(seq))

	col := sess.Collector()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	res, rerr := faultsim.RunCtx(ctx, c, seq, faults,
		faultsim.Options{Workers: *workers, Eval: backend, MapEval: *mapEval, ConeThreshold: *coneThr, Obs: col})
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	interrupted := errors.Is(rerr, context.Canceled)
	if rerr != nil && !interrupted {
		fail(rerr)
	}
	det := res.NumDetected()
	note := ""
	if interrupted {
		note = "  (interrupted — partial)"
	}
	fmt.Printf("detected %d / %d faults (%.2f%% coverage)%s\n",
		det, len(faults), 100*float64(det)/float64(len(faults)), note)
	extras := map[string]float64{
		"faults":   float64(len(faults)),
		"detected": float64(det),
	}
	if len(faults) > 0 {
		extras["coverage"] = 100 * float64(det) / float64(len(faults))
	}
	// Allocation trend series for fsctstats: mallocs/bytes of the
	// simulation proper, so an allocation regression in an evaluator
	// shows up across ledgered runs without rerunning benchmarks.
	extras["sim_mallocs"] = float64(msAfter.Mallocs - msBefore.Mallocs)
	extras["sim_alloc_bytes"] = float64(msAfter.TotalAlloc - msBefore.TotalAlloc)
	sess.RecordRun(c.Name, c.StructuralHash(), col.Snapshot(), extras)
	if oflags.Metrics {
		fmt.Print(fsct.FormatMetrics(col.Snapshot()))
	}

	if *profilePlot {
		step := len(seq) / 20
		if step < 1 {
			step = 1
		}
		var bounds []int
		for b := 0; b <= len(seq); b += step {
			bounds = append(bounds, b)
		}
		prof := res.Profile(bounds)
		for i, b := range bounds {
			bar := 0
			if det > 0 {
				bar = prof[i] * 50 / det
			}
			fmt.Printf("%7d cyc |%-50s| %d\n", b, bars(bar), prof[i])
		}
	}
	if interrupted {
		exit(1)
	}
	exit(0)
}

func bars(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "faultsim: %v\n", err)
	exit(1)
}
