// Command fsctest reproduces the paper's experiments: it generates the
// twelve-circuit suite, inserts functional scan chains via TPI, runs the
// three-step scan-chain testing flow, and prints Tables 1-3 and Figure 5
// in the paper's layout.
//
// Usage:
//
//	fsctest [-scale 0.1] [-circuits s1423,s5378] [-chains N] [-seed 1]
//	        [-table all|1|2|3] [-fig5 s38584] [-v]
//	        [-eval auto|compiled|packed|scalar|event|hybrid]
//	        [-metrics] [-trace] [-tracefile run.json] [-progress]
//	        [-debug addr] [-why fault]
//
// Each selected circuit runs as one flow-kind task spec through the
// canonical task layer (internal/task) — the same pipeline fsctd flow
// jobs execute, so per-circuit reports are byte-identical to the
// daemon's for the same spec.
//
// SIGINT (ctrl-C) cancels the run cooperatively: completed circuits and
// the partial report of the interrupted one are still printed, the
// flight-recorder timeline collected so far is still exported to
// -tracefile, and the process exits non-zero.
//
// With -metrics each run is instrumented and the output switches to a
// JSON array of per-circuit reports, each embedding its metrics
// snapshot (phase wall times, fault-category counters, ATPG and
// fault-simulation statistics, worker-pool utilization); -trace
// additionally streams phase annotations to stderr, -tracefile writes
// the run's flight-recorder timeline as a Chrome trace-event file,
// -progress renders live per-phase progress on stderr, and -debug addr
// serves /debug/pprof and /debug/vars while running.
//
// -why <fault> replays the flight recorder after each run and explains
// what the flow decided about the named fault (match by the Describe
// rendering, e.g. "G10 s-a-1", or by fault-list index): its screening
// category with the implicating net and chain locations, every ATPG
// attempt, and the detecting cycle. With -metrics the explanation
// embeds in the JSON report's provenance section instead.
//
// Absolute numbers differ from the paper (synthetic circuits, different
// ATPG engines, modern hardware); the shapes are the reproduction target.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro"
	"repro/cmd/internal/obsflags"
	"repro/cmd/internal/specflags"
)

func main() {
	var (
		v = specflags.Register(flag.CommandLine, fsct.TaskFlow,
			specflags.Options{Chains: true, Workers: true, Eval: true})
		circuits = flag.String("circuits", "", "comma-separated circuit names (default: whole suite)")
		table    = flag.String("table", "all", "which table to print: all, 1, 2, 3")
		fig5     = flag.String("fig5", "", "circuit whose detection profile to plot (default: largest run)")
		verbose  = flag.Bool("v", false, "print per-circuit reports while running")
		why      = flag.String("why", "", "explain one fault from the flight recorder (Describe string or fault index)")
		oflags   = obsflags.Register(flag.CommandLine)
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "fsctest: "+format+"\n", args...)
		os.Exit(1)
	}

	if _, err := fsct.ParseEvalBackend(v.Eval); err != nil {
		fail("%v", err)
	}

	// SIGINT cancels the flow mid-step; whatever completed is still
	// reported below, marked interrupted.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sess, err := oflags.Open()
	if err != nil {
		fail("%v", err)
	}
	defer sess.Close()
	if *why != "" {
		sess.EnsureRecorder() // provenance replays the journal
	}

	want := map[string]bool{}
	if *circuits != "" {
		for _, n := range strings.Split(*circuits, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}

	// exit closes the session (flushing -tracefile and the -ledger
	// records — os.Exit skips the deferred Close) before terminating.
	exit := func(code int) {
		sess.SetExit(code)
		if err := sess.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "fsctest: %v\n", err)
			code = 1
		}
		os.Exit(code)
	}

	interrupted := false
	var reports []*fsct.Report
	for _, p := range fsct.Suite() {
		if len(want) > 0 && !want[p.Name] {
			continue
		}
		col := sess.Collector()
		if oflags.Trace {
			col.Tracef("run %s (scale %g, seed %d)", p.Name, v.Scale, v.Seed)
		}
		sp, serr := v.Spec(p.Name)
		if serr != nil {
			fmt.Fprintf(os.Stderr, "fsctest: %s: %v\n", p.Name, serr)
			exit(1)
		}
		sess.StampTrace(&sp)
		// The journal is shared across circuits; remember where this
		// circuit's events start so -why replays only its own slice
		// (fault keys are circuit-local signal IDs).
		mark := sess.Recorder().Len()
		res, err := fsct.RunTask(sess.TrackCtx(ctx, sp.Kind, sp.Circuit), sp, nil, col)
		canceled := errors.Is(err, context.Canceled)
		if err != nil && !canceled {
			fmt.Fprintf(os.Stderr, "fsctest: %s: %v\n", p.Name, err)
			exit(1)
		}
		var rep *fsct.Report
		var d *fsct.Design
		if res != nil {
			rep, d = res.Report, res.Design
		}
		if rep != nil {
			// One ledger record per circuit; interrupted circuits land
			// with whatever they completed.
			sess.RecordRun(rep.Circuit, rep.StructuralHash, rep.Metrics, res.Extras)
		}
		if rep != nil && *why != "" && d != nil {
			events := sess.Recorder().Snapshot()
			if mark <= len(events) {
				events = events[mark:]
			}
			prov, werr := explain(d, events, *why)
			if werr != nil {
				fmt.Fprintf(os.Stderr, "fsctest: %s: -why: %v\n", p.Name, werr)
				exit(1)
			}
			rep.Provenance = append(rep.Provenance, prov)
		}
		if canceled {
			// Keep the partial report; the tables below cover what ran.
			fmt.Fprintf(os.Stderr, "fsctest: %s: interrupted, reporting partial results\n", p.Name)
			interrupted = true
			if rep != nil {
				reports = append(reports, rep)
			}
			break
		}
		reports = append(reports, rep)
		if *verbose {
			fmt.Print(fsct.FormatReport(rep))
			if rep.Metrics != nil {
				fmt.Print(fsct.FormatMetrics(rep.Metrics))
			}
		}
	}
	if len(reports) == 0 {
		fmt.Fprintln(os.Stderr, "fsctest: no circuits selected")
		exit(1)
	}

	if oflags.Metrics {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fail("%v", err)
		}
		if interrupted {
			exit(1)
		}
		exit(0)
	}

	if *why != "" {
		for _, r := range reports {
			for _, prov := range r.Provenance {
				fmt.Printf("%s: %s", r.Circuit, prov.Format())
			}
		}
	}

	switch *table {
	case "1":
		fmt.Print(fsct.Table1(reports))
	case "2":
		fmt.Print(fsct.Table2(reports))
	case "3":
		fmt.Print(fsct.Table3(reports))
	case "all":
		fmt.Print(fsct.Table1(reports))
		fmt.Println()
		fmt.Print(fsct.Table2(reports))
		fmt.Println()
		fmt.Print(fsct.Table3(reports))
		fmt.Println()
		fmt.Print(fsct.Figure5(pickFig5(reports, *fig5)))
	default:
		fmt.Fprintf(os.Stderr, "fsctest: unknown -table %q\n", *table)
		exit(1)
	}
	if *fig5 != "" && *table != "all" {
		fmt.Println()
		fmt.Print(fsct.Figure5(pickFig5(reports, *fig5)))
	}
	if interrupted {
		fmt.Println("\n(interrupted — tables cover the circuits that completed, plus one partial run)")
		exit(1)
	}
	exit(0)
}

// explain resolves the -why selector — a fault-list index or the exact
// Describe rendering (e.g. "G10 s-a-1") — against the design's
// collapsed fault list and replays the journal for it.
func explain(d *fsct.Design, events []fsct.JournalEvent, sel string) (*fsct.Provenance, error) {
	faults := fsct.CollapsedFaults(d.C)
	if idx, err := strconv.Atoi(sel); err == nil {
		if idx < 0 || idx >= len(faults) {
			return nil, fmt.Errorf("fault index %d out of range [0,%d)", idx, len(faults))
		}
		return fsct.ExplainFault(d, events, faults[idx]), nil
	}
	for _, f := range faults {
		if f.Describe(d.C) == sel {
			return fsct.ExplainFault(d, events, f), nil
		}
	}
	return nil, fmt.Errorf("no fault %q in the collapsed fault list (try an index < %d)", sel, len(faults))
}

// pickFig5 selects the named circuit's report, defaulting to the one
// with the most faults (the paper plots s38584, its largest).
func pickFig5(reports []*fsct.Report, name string) *fsct.Report {
	if name != "" {
		for _, r := range reports {
			if r.Circuit == name {
				return r
			}
		}
	}
	best := reports[0]
	for _, r := range reports[1:] {
		if r.Faults > best.Faults {
			best = r
		}
	}
	return best
}
