// Command fsctest reproduces the paper's experiments: it generates the
// twelve-circuit suite, inserts functional scan chains via TPI, runs the
// three-step scan-chain testing flow, and prints Tables 1-3 and Figure 5
// in the paper's layout.
//
// Usage:
//
//	fsctest [-scale 0.1] [-circuits s1423,s5378] [-chains N] [-seed 1]
//	        [-table all|1|2|3] [-fig5 s38584] [-v]
//	        [-eval auto|compiled|packed|scalar|event]
//	        [-metrics] [-trace] [-debug addr]
//
// SIGINT (ctrl-C) cancels the run cooperatively: completed circuits and
// the partial report of the interrupted one are still printed, and the
// process exits non-zero.
//
// With -metrics each run is instrumented and the output switches to a
// JSON array of per-circuit reports, each embedding its metrics
// snapshot (phase wall times, fault-category counters, ATPG and
// fault-simulation statistics, worker-pool utilization); -trace
// additionally streams phase annotations to stderr, and -debug
// addr serves /debug/pprof and /debug/vars while running.
//
// Absolute numbers differ from the paper (synthetic circuits, different
// ATPG engines, modern hardware); the shapes are the reproduction target.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro"
)

func main() {
	var (
		scale    = flag.Float64("scale", 1.0, "profile scale factor in (0,1]; smaller = faster")
		circuits = flag.String("circuits", "", "comma-separated circuit names (default: whole suite)")
		chains   = flag.Int("chains", 0, "scan chains per circuit (0 = size-based default)")
		seed     = flag.Int64("seed", 1, "generation and insertion seed")
		table    = flag.String("table", "all", "which table to print: all, 1, 2, 3")
		fig5     = flag.String("fig5", "", "circuit whose detection profile to plot (default: largest run)")
		verbose  = flag.Bool("v", false, "print per-circuit reports while running")
		workers  = flag.Int("workers", 0, "fault-axis worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		eval     = flag.String("eval", "auto", "evaluator backend: auto, compiled, packed, scalar, event")
		metrics  = flag.Bool("metrics", false, "instrument the runs and emit JSON reports with metrics instead of tables")
		trace    = flag.Bool("trace", false, "stream phase/step trace annotations to stderr (implies instrumentation)")
		debug    = flag.String("debug", "", "serve /debug/pprof and /debug/vars on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	backend, err := fsct.ParseEvalBackend(*eval)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsctest: %v\n", err)
		os.Exit(1)
	}

	// SIGINT cancels the flow mid-step; whatever completed is still
	// reported below, marked interrupted.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *debug != "" {
		if err := fsct.ServeDebug(*debug); err != nil {
			fmt.Fprintf(os.Stderr, "fsctest: -debug: %v\n", err)
			os.Exit(1)
		}
	}

	want := map[string]bool{}
	if *circuits != "" {
		for _, n := range strings.Split(*circuits, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}

	instrument := *metrics || *trace
	interrupted := false
	var reports []*fsct.Report
	for _, p := range fsct.Suite() {
		if len(want) > 0 && !want[p.Name] {
			continue
		}
		var col *fsct.Collector
		if instrument {
			col = fsct.NewCollector()
			if *trace {
				col.SetTrace(os.Stderr)
				col.Tracef("run %s (scale %g, seed %d)", p.Name, *scale, *seed)
			}
			fsct.PublishMetrics(col)
		}
		exp := fsct.Experiment{
			Profile: p, Scale: *scale, Chains: *chains, Seed: *seed,
			Flow: fsct.FlowParams{Workers: *workers, Obs: col, Eval: backend},
		}
		rep, _, err := exp.RunCtx(ctx)
		if errors.Is(err, context.Canceled) {
			// Keep the partial report; the tables below cover what ran.
			fmt.Fprintf(os.Stderr, "fsctest: %s: interrupted, reporting partial results\n", p.Name)
			interrupted = true
			if rep != nil {
				reports = append(reports, rep)
			}
			break
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsctest: %s: %v\n", p.Name, err)
			os.Exit(1)
		}
		reports = append(reports, rep)
		if *verbose {
			fmt.Print(fsct.FormatReport(rep))
			if rep.Metrics != nil {
				fmt.Print(fsct.FormatMetrics(rep.Metrics))
			}
		}
	}
	if len(reports) == 0 {
		fmt.Fprintln(os.Stderr, "fsctest: no circuits selected")
		os.Exit(1)
	}

	if *metrics {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "fsctest: %v\n", err)
			os.Exit(1)
		}
		if interrupted {
			os.Exit(1)
		}
		return
	}

	switch *table {
	case "1":
		fmt.Print(fsct.Table1(reports))
	case "2":
		fmt.Print(fsct.Table2(reports))
	case "3":
		fmt.Print(fsct.Table3(reports))
	case "all":
		fmt.Print(fsct.Table1(reports))
		fmt.Println()
		fmt.Print(fsct.Table2(reports))
		fmt.Println()
		fmt.Print(fsct.Table3(reports))
		fmt.Println()
		fmt.Print(fsct.Figure5(pickFig5(reports, *fig5)))
	default:
		fmt.Fprintf(os.Stderr, "fsctest: unknown -table %q\n", *table)
		os.Exit(1)
	}
	if *fig5 != "" && *table != "all" {
		fmt.Println()
		fmt.Print(fsct.Figure5(pickFig5(reports, *fig5)))
	}
	if interrupted {
		fmt.Println("\n(interrupted — tables cover the circuits that completed, plus one partial run)")
		os.Exit(1)
	}
}

// pickFig5 selects the named circuit's report, defaulting to the one
// with the most faults (the paper plots s38584, its largest).
func pickFig5(reports []*fsct.Report, name string) *fsct.Report {
	if name != "" {
		for _, r := range reports {
			if r.Circuit == name {
				return r
			}
		}
	}
	best := reports[0]
	for _, r := range reports[1:] {
		if r.Faults > best.Faults {
			best = r
		}
	}
	return best
}
