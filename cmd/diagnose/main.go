// Command diagnose plays back a failing device against a scan design's
// fault dictionary and localizes the chain corruption. The failing
// device is simulated: -inject picks the hidden fault by index (or use
// -worst to scan every candidate and report dictionary resolution
// statistics).
//
// Usage:
//
//	diagnose -profile s3330 -scale 0.1 -chains 2 -inject 7
//	diagnose -profile s9234 -scale 0.05 -stats
//	diagnose -profile s3330 -scale 0.1 -stats -metrics -tracefile dict.json
//
// The observability flags are the shared surface (see
// cmd/internal/obsflags): -metrics appends a metrics summary (the
// "dictionary" phase, screening counters, pool utilization), -trace
// streams phase annotations to stderr, -tracefile exports the
// flight-recorder timeline as a Chrome trace-event file, -progress
// renders live progress on stderr, and -debug addr serves /debug/pprof
// and /debug/vars.
//
// SIGINT cancels screening, dictionary building, and the -stats sweep
// cooperatively; the process exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro"
	"repro/cmd/internal/obsflags"
	"repro/internal/diagnose"
	"repro/internal/fault"
)

// sess is the observability session; every exit goes through exit so
// Close runs (os.Exit skips defers and -tracefile is written on Close).
var sess *obsflags.Session

func exit(code int) {
	if sess != nil {
		sess.SetExit(code)
		if err := sess.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "diagnose: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

func main() {
	var (
		profile = flag.String("profile", "s3330", "suite profile (or \"s27\")")
		scale   = flag.Float64("scale", 0.1, "profile scale factor")
		chains  = flag.Int("chains", 0, "scan chains (0 = default)")
		seed    = flag.Int64("seed", 1, "seed")
		inject  = flag.Int("inject", 0, "index of the hidden fault among chain-affecting candidates")
		stats   = flag.Bool("stats", false, "diagnose every candidate and report resolution statistics")
		workers = flag.Int("workers", 0, "fault-axis worker goroutines for screening and dictionary building (0 = GOMAXPROCS)")
		oflags  = obsflags.Register(flag.CommandLine)
	)
	flag.Parse()

	var err error
	if sess, err = oflags.Open(); err != nil {
		fail(err)
	}
	defer sess.Close()
	col := sess.Collector()

	// done finishes a successful run: the ledger record is queued and the
	// metrics summary prints after the diagnosis output so the tables
	// stay the headline. design and extras fill in as the run progresses.
	var design *fsct.Design
	extras := map[string]float64{}
	done := func() {
		if design != nil {
			sess.RecordRun(design.C.Name, design.C.StructuralHash(), col.Snapshot(), extras)
		}
		if oflags.Metrics {
			fmt.Print(fsct.FormatMetrics(col.Snapshot()))
		}
		exit(0)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var c *fsct.Circuit
	if *profile == "s27" {
		c = fsct.S27()
	} else {
		p, perr := fsct.ProfileByName(*profile)
		if perr != nil {
			fail(perr)
		}
		if *scale > 0 && *scale < 1 {
			p = p.Scale(*scale)
		}
		c = fsct.GenerateCircuit(p, *seed)
	}
	n := *chains
	if n == 0 {
		n = fsct.DefaultChains(len(c.FFs))
	}
	d, err := fsct.InsertScan(c, fsct.ScanOptions{NumChains: n, Seed: *seed})
	if err != nil {
		fail(err)
	}
	design = d
	screened, err := fsct.ScreenFaultsCtx(ctx, d, fsct.CollapsedFaults(d.C), fsct.ScreenOptions{Workers: *workers, Obs: col})
	if err != nil {
		fail(err)
	}
	var affecting []fault.Fault
	for _, s := range screened {
		if s.Cat != fsct.CatUnaffecting {
			affecting = append(affecting, s.Fault)
		}
	}
	fmt.Printf("circuit %s: dictionary over %d chain-affecting faults\n", d.C.Name, len(affecting))
	dict, err := fsct.BuildDictionaryObs(ctx, d, affecting, uint64(*seed), *workers, col)
	if err != nil {
		fail(err)
	}

	if *stats {
		exact, ambiguous, silent := 0, 0, 0
		totalMatches := 0
		for _, f := range affecting {
			if ctx.Err() != nil {
				fail(ctx.Err())
			}
			hidden := f
			sig := dict.Observe(&diagnose.SimulatedDevice{C: d.C, Hidden: &hidden})
			if sig == dict.GoodSignature() {
				silent++
				continue
			}
			m := dict.Match(sig)
			totalMatches += len(m)
			if len(m) == 1 {
				exact++
			} else {
				ambiguous++
			}
		}
		diagnosable := exact + ambiguous
		extras["candidates"] = float64(len(affecting))
		extras["diagnosable"] = float64(diagnosable)
		extras["exact"] = float64(exact)
		extras["silent"] = float64(silent)
		fmt.Printf("diagnosable: %d (%.1f%%)  exact: %d  ambiguous: %d  silent: %d\n",
			diagnosable, 100*float64(diagnosable)/float64(len(affecting)), exact, ambiguous, silent)
		if diagnosable > 0 {
			fmt.Printf("mean candidates per diagnosis: %.2f\n", float64(totalMatches)/float64(diagnosable))
		}
		done()
	}

	if *inject < 0 || *inject >= len(affecting) {
		fail(fmt.Errorf("-inject out of range [0,%d)", len(affecting)))
	}
	hidden := affecting[*inject]
	fmt.Printf("hidden defect: %s\n", hidden.Describe(d.C))
	sig := dict.Observe(&diagnose.SimulatedDevice{C: d.C, Hidden: &hidden})
	if sig == dict.GoodSignature() {
		fmt.Println("device matches the fault-free signature on the diagnostic set;")
		fmt.Println("the defect needs the full ATPG flow to even show (see cmd/fsctest)")
		done()
	}
	fmt.Printf("observed signature %016x\n", uint64(sig))
	for _, m := range dict.Match(sig) {
		mark := ""
		if m == hidden {
			mark = "   <-- injected"
		}
		fmt.Printf("  candidate: %s%s\n", m.Describe(d.C), mark)
	}
	for _, sus := range dict.Localize(sig) {
		fmt.Printf("  suspect region: chain %d segments %d..%d (%v)\n",
			sus.Chain, sus.LoSeg, sus.HiSeg, sus.Category)
	}
	done()
}

func fail(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "diagnose: interrupted")
	} else {
		fmt.Fprintf(os.Stderr, "diagnose: %v\n", err)
	}
	exit(1)
}
