// Command diagnose plays back a failing device against a scan design's
// fault dictionary and localizes the chain corruption. The failing
// device is simulated: -inject picks the hidden fault by index (or use
// -worst to scan every candidate and report dictionary resolution
// statistics).
//
// Usage:
//
//	diagnose -profile s3330 -scale 0.1 -chains 2 -inject 7
//	diagnose -profile s9234 -scale 0.05 -stats
//	diagnose -profile s3330 -scale 0.1 -stats -metrics -tracefile dict.json
//
// The observability flags are the shared surface (see
// cmd/internal/obsflags): -metrics appends a metrics summary (the
// "dictionary" phase, screening counters, pool utilization), -trace
// streams phase annotations to stderr, -tracefile exports the
// flight-recorder timeline as a Chrome trace-event file, -progress
// renders live progress on stderr, and -debug addr serves /debug/pprof
// and /debug/vars.
//
// SIGINT cancels screening, dictionary building, and the -stats sweep
// cooperatively; the process exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro"
	"repro/cmd/internal/obsflags"
	"repro/cmd/internal/specflags"
	"repro/internal/diagnose"
	"repro/internal/task"
)

// sess is the observability session; every exit goes through exit so
// Close runs (os.Exit skips defers and -tracefile is written on Close).
var sess *obsflags.Session

func exit(code int) {
	if sess != nil {
		sess.SetExit(code)
		if err := sess.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "diagnose: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

func main() {
	var (
		v = specflags.Register(flag.CommandLine, fsct.TaskDiagnose,
			specflags.Options{Profile: true, DefaultProfile: "s3330", Chains: true, Workers: true})
		inject = flag.Int("inject", 0, "index of the hidden fault among chain-affecting candidates")
		stats  = flag.Bool("stats", false, "diagnose every candidate and report resolution statistics")
		oflags = obsflags.Register(flag.CommandLine)
	)
	flag.Parse()

	var err error
	if sess, err = oflags.Open(); err != nil {
		fail(err)
	}
	defer sess.Close()
	col := sess.Collector()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sp, err := v.Spec("")
	if err != nil {
		fail(err)
	}
	sess.StampTrace(&sp)

	// -stats is exactly a diagnose-kind task: the report (dictionary
	// header plus resolution statistics) and the ledger extras come from
	// the canonical pipeline, byte-identical to an fsctd diagnose job.
	if *stats {
		res, rerr := fsct.RunTask(sess.TrackCtx(ctx, sp.Kind, sp.Circuit), sp, nil, col)
		if rerr != nil {
			fail(rerr)
		}
		fmt.Print(res.Output)
		sess.RecordRun(res.Circuit, res.Hash, col.Snapshot(), res.Extras)
		if oflags.Metrics {
			fmt.Print(fsct.FormatMetrics(col.Snapshot()))
		}
		exit(0)
	}

	// -inject shares the task layer's front half (screen + dictionary)
	// and then plays back the one hidden fault interactively.
	d, _, affecting, dict, err := task.Diagnosis(ctx, sp, nil, col)
	if err != nil {
		fail(err)
	}
	fmt.Print(task.FormatDiagnoseHeader(d.C.Name, len(affecting)))

	// done finishes the run: the ledger record is queued and the metrics
	// summary prints after the diagnosis output so the tables stay the
	// headline.
	extras := map[string]float64{}
	done := func() {
		sess.RecordRun(d.C.Name, d.C.StructuralHash(), col.Snapshot(), extras)
		if oflags.Metrics {
			fmt.Print(fsct.FormatMetrics(col.Snapshot()))
		}
		exit(0)
	}

	if *inject < 0 || *inject >= len(affecting) {
		fail(fmt.Errorf("-inject out of range [0,%d)", len(affecting)))
	}
	hidden := affecting[*inject]
	fmt.Printf("hidden defect: %s\n", hidden.Describe(d.C))
	sig := dict.Observe(&diagnose.SimulatedDevice{C: d.C, Hidden: &hidden})
	if sig == dict.GoodSignature() {
		fmt.Println("device matches the fault-free signature on the diagnostic set;")
		fmt.Println("the defect needs the full ATPG flow to even show (see cmd/fsctest)")
		done()
	}
	fmt.Printf("observed signature %016x\n", uint64(sig))
	for _, m := range dict.Match(sig) {
		mark := ""
		if m == hidden {
			mark = "   <-- injected"
		}
		fmt.Printf("  candidate: %s%s\n", m.Describe(d.C), mark)
	}
	for _, sus := range dict.Localize(sig) {
		fmt.Printf("  suspect region: chain %d segments %d..%d (%v)\n",
			sus.Chain, sus.LoSeg, sus.HiSeg, sus.Category)
	}
	done()
}

func fail(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "diagnose: interrupted")
	} else {
		fmt.Fprintf(os.Stderr, "diagnose: %v\n", err)
	}
	exit(1)
}
