// Command benchgen emits the synthetic benchmark suite as ISCAS'89
// .bench files, so the circuits the experiments run on can be inspected
// or fed to other tools.
//
// Usage:
//
//	benchgen [-out dir] [-scale 1.0] [-seed 1] [-circuits s1423,s5378]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"repro"
	"repro/internal/bench"
)

func main() {
	var (
		out      = flag.String("out", ".", "output directory")
		scale    = flag.Float64("scale", 1.0, "profile scale factor in (0,1]")
		seed     = flag.Int64("seed", 1, "generation seed")
		circuits = flag.String("circuits", "", "comma-separated circuit names (default: whole suite)")
		verilog  = flag.Bool("verilog", false, "also emit structural Verilog (.v) next to each .bench")
	)
	flag.Parse()

	want := map[string]bool{}
	if *circuits != "" {
		for _, n := range strings.Split(*circuits, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	for _, p := range fsct.Suite() {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "benchgen: interrupted")
			os.Exit(1)
		}
		if len(want) > 0 && !want[p.Name] {
			continue
		}
		if *scale > 0 && *scale < 1 {
			p = p.Scale(*scale)
		}
		c := fsct.GenerateCircuit(p, *seed)
		path := filepath.Join(*out, p.Name+".bench")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
		if err := fsct.WriteBench(f, c); err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %s: %v\n", path, err)
			os.Exit(1)
		}
		f.Close()
		if *verilog {
			vpath := filepath.Join(*out, p.Name+".v")
			vf, err := os.Create(vpath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
				os.Exit(1)
			}
			if err := bench.WriteVerilog(vf, c); err != nil {
				fmt.Fprintf(os.Stderr, "benchgen: %s: %v\n", vpath, err)
				os.Exit(1)
			}
			vf.Close()
		}
		st := c.Stat()
		fmt.Printf("%-12s %6d gates %5d FFs -> %s\n", p.Name, st.Gates, st.FFs, path)
	}
}
