// Command doclint enforces the repository's documentation contract:
// every Go package (including package main commands) must carry a
// package comment on at least one of its non-test files. It walks the
// module tree, parses package clauses only, and exits non-zero listing
// each offending package — CI runs it next to go vet and the gofmt
// check.
//
// Usage:
//
//	go run ./cmd/doclint [dir]
package main

import (
	"context"
	"errors"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// dir -> true once any non-test file in it documents the package.
	documented := map[string]bool{}
	hasGo := map[string]bool{}

	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		hasGo[dir] = true
		if documented[dir] {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("%s: %v", path, perr)
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			documented[dir] = true
		}
		return nil
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "doclint: interrupted")
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		os.Exit(2)
	}

	var missing []string
	for dir := range hasGo {
		if !documented[dir] {
			missing = append(missing, dir)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		fmt.Fprintln(os.Stderr, "doclint: packages without a package comment:")
		for _, dir := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", dir)
		}
		os.Exit(1)
	}
	fmt.Printf("doclint: %d packages documented\n", len(hasGo))
}
