package fsct

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// Golden-output tests: FormatReport and FormatMetrics render fixed
// inputs, so their exact output is part of the public contract (scripts
// parse it; EXPERIMENTS.md quotes it). Update the golden strings
// deliberately when changing the format.

func TestFormatReportGolden(t *testing.T) {
	r := &Report{
		Circuit:         "golden",
		Gates:           100,
		FFs:             10,
		Faults:          200,
		Chains:          2,
		Easy:            50,
		Hard:            30,
		ScreenCPU:       2 * time.Millisecond,
		EasyConfirmed:   50,
		EasyEscapes:     0,
		Step2:           StepStats{Detected: 25, Undetectable: 3, Undetected: 2, CPU: 150 * time.Millisecond},
		Step2Vectors:    12,
		COCircuits:      3,
		FinalCOCircuits: 1,
		Step3:           StepStats{Detected: 2, Undetectable: 0, Undetected: 0, CPU: 1200 * time.Millisecond},
	}
	want := `circuit golden: 100 gates, 10 FFs, 2 chains, 200 faults
  screening: easy=50 (25.0%)  hard=30 (15.0%)  affecting=80 (40.0%)  [2ms]
  step 1: alternating sequence confirmed 50/50 easy faults (0 escapes)
  step 2: 12 vectors; det=25 undetectable=3 undetected=2  [150ms]
  step 3: 3+1 C/O circuits; det=2 undetectable=0 undetected=0  [1.2s]
  undetected: 0 = 0.0000% of faults = 0.0000% of affecting
`
	if got := FormatReport(r); got != want {
		t.Errorf("FormatReport golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestFormatMetricsGolden(t *testing.T) {
	m := &Metrics{
		WallNS: (10 * time.Millisecond).Nanoseconds(),
		Phases: []obs.PhaseMetric{
			{Name: "screen", StartNS: 0, WallNS: (2 * time.Millisecond).Nanoseconds()},
			{Name: "step2", StartNS: (2 * time.Millisecond).Nanoseconds(), WallNS: (8 * time.Millisecond).Nanoseconds()},
		},
		Counters: map[string]int64{
			"screen.faults":       200,
			"atpg.comb.generated": 40,
		},
		// The histogram is the snapshot of observations {1, 1, 2, 6}:
		// Snapshot fills the quantile fields from the buckets.
		Histograms: map[string]obs.HistogramMetric{
			"atpg.comb.backtracks": {
				Count: 4, Sum: 10, Max: 6,
				P50: 1, P95: 6, P99: 6,
				Buckets: []obs.HistogramBucket{{Le: 1, Count: 2}, {Le: 3, Count: 1}, {Le: 7, Count: 1}},
			},
		},
		Pools: map[string]obs.PoolMetric{
			"faultsim": {
				WallNS:      (4 * time.Millisecond).Nanoseconds(),
				Calls:       3,
				Utilization: 0.85,
				Workers:     []obs.WorkerMetric{{BusyNS: (3400 * time.Microsecond).Nanoseconds(), Items: 12}},
			},
		},
	}
	want := `metrics: wall=10ms
  phases:
    screen                          2ms   20.0%
    step2                           8ms   80.0%
  counters:
    atpg.comb.generated                        40
    screen.faults                             200
  histograms:
    atpg.comb.backtracks             count=4 sum=10 max=6 mean=2.5 p50=1 p95=6 p99=6
  pools:
    faultsim         util= 85.0%  calls=3  workers=1  wall=4ms
      worker 0  busy=3.4ms      items=12
`
	if got := FormatMetrics(m); got != want {
		t.Errorf("FormatMetrics golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestFormatMetricsNil(t *testing.T) {
	if got := FormatMetrics(nil); got != "metrics: (none)\n" {
		t.Errorf("FormatMetrics(nil) = %q", got)
	}
}
