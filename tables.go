package fsct

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
)

// Table1 renders the test-suite table (paper Table 1): circuit sizes,
// fault counts and chain counts.
func Table1(reports []*Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Test suite.\n")
	fmt.Fprintf(&b, "%-10s %8s %6s %8s %7s\n", "name", "#gates", "#FFs", "#faults", "#chains")
	tg, tf, tfl, tc := 0, 0, 0, 0
	for _, r := range reports {
		fmt.Fprintf(&b, "%-10s %8d %6d %8d %7d\n", r.Circuit, r.Gates, r.FFs, r.Faults, r.Chains)
		tg += r.Gates
		tf += r.FFs
		tfl += r.Faults
		tc += r.Chains
	}
	fmt.Fprintf(&b, "%-10s %8d %6d %8d %7d\n", "total", tg, tf, tfl, tc)
	return b.String()
}

// Table2 renders the screening table (paper Table 2): easy and hard
// faults affecting the scan chain, with CPU time.
func Table2(reports []*Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Finding easy and hard faults (faults affecting the scan chain).\n")
	fmt.Fprintf(&b, "%-10s %10s %8s %10s %8s %10s\n", "name", "#easy", "(%)", "#hard", "(%)", "CPU")
	te, th, tf := 0, 0, 0
	var tcpu time.Duration
	for _, r := range reports {
		fmt.Fprintf(&b, "%-10s %10d %7.1f%% %10d %7.1f%% %10s\n",
			r.Circuit, r.Easy, pct(r.Easy, r.Faults), r.Hard, pct(r.Hard, r.Faults), round(r.ScreenCPU))
		te += r.Easy
		th += r.Hard
		tf += r.Faults
		tcpu += r.ScreenCPU
	}
	fmt.Fprintf(&b, "%-10s %10d %7.1f%% %10d %7.1f%% %10s\n",
		"total", te, pct(te, tf), th, pct(th, tf), round(tcpu))
	return b.String()
}

// Table3 renders the detection table (paper Table 3): step 2
// (combinational ATPG + sequential fault simulation) and step 3
// (sequential ATPG on increased-C/O circuits), with the headline
// undetected percentages.
func Table3(reports []*Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Detecting the faults in f_hard.\n")
	fmt.Fprintf(&b, "%-10s | %6s %8s %7s %9s | %6s | %6s %8s %7s %9s\n",
		"", "det", "undetbl", "undet", "CPU", "#circ", "det", "undetbl", "undet", "CPU")
	fmt.Fprintf(&b, "%-10s | %32s | %6s | %32s\n", "name", "Comb ATPG / Seq Fault Sim", "", "Sequential ATPG")
	var t2, t3 [3]int
	var c2, c3 time.Duration
	circ, fcirc := 0, 0
	totalFaults, affecting, undet := 0, 0, 0
	for _, r := range reports {
		fmt.Fprintf(&b, "%-10s | %6d %8d %7d %9s | %3d+%-3d| %6d %8d %7d %9s\n",
			r.Circuit,
			r.Step2.Detected, r.Step2.Undetectable, r.Step2.Undetected, round(r.Step2.CPU),
			r.COCircuits, r.FinalCOCircuits,
			r.Step3.Detected, r.Step3.Undetectable, r.Step3.Undetected, round(r.Step3.CPU))
		t2[0] += r.Step2.Detected
		t2[1] += r.Step2.Undetectable
		t2[2] += r.Step2.Undetected
		t3[0] += r.Step3.Detected
		t3[1] += r.Step3.Undetectable
		t3[2] += r.Step3.Undetected
		c2 += r.Step2.CPU
		c3 += r.Step3.CPU
		circ += r.COCircuits
		fcirc += r.FinalCOCircuits
		totalFaults += r.Faults
		affecting += r.Affecting()
		undet += r.Undetected()
	}
	fmt.Fprintf(&b, "%-10s | %6d %8d %7d %9s | %3d+%-3d| %6d %8d %7d %9s\n",
		"total", t2[0], t2[1], t2[2], round(c2), circ, fcirc, t3[0], t3[1], t3[2], round(c3))
	fmt.Fprintf(&b, "\nHeadline: undetected = %d = %.3f%% of all faults = %.3f%% of chain-affecting faults\n",
		undet, pct(undet, totalFaults), pct(undet, affecting))
	fmt.Fprintf(&b, "(paper: 0.006%% of all faults, 0.022%% of chain-affecting faults)\n")
	return b.String()
}

// Figure5 renders the detection-profile curve of a report (paper Figure
// 5: number of simulated test vectors versus detected faults) as an
// ASCII series plus a sparkline table.
func Figure5(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: detected faults vs simulated vectors (%s).\n", r.Circuit)
	if len(r.Profile) == 0 {
		b.WriteString("(no step-2 vectors were needed)\n")
		return b.String()
	}
	maxDet := r.Profile[len(r.Profile)-1]
	const width = 50
	step := (len(r.Profile) + 19) / 20
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(r.Profile); i += step {
		bar := 0
		if maxDet > 0 {
			bar = r.Profile[i] * width / maxDet
		}
		fmt.Fprintf(&b, "%6d vec |%-*s| %d\n", i, width, strings.Repeat("#", bar), r.Profile[i])
	}
	last := len(r.Profile) - 1
	if last%step != 0 {
		bar := width
		fmt.Fprintf(&b, "%6d vec |%-*s| %d\n", last, width, strings.Repeat("#", bar), maxDet)
	}
	return b.String()
}

// FormatReport renders one circuit's full report. The rendering lives
// in internal/core so the task layer shares it; this re-export keeps
// the library surface stable.
func FormatReport(r *Report) string { return core.FormatReport(r) }

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func round(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
